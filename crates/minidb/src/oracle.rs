//! The recovery oracle: a seeded, shadowed workload whose full logical
//! contents can be checked against REDO recovery at **every** crash
//! point.
//!
//! The workload runs batches of inserts, updates and deletes over two
//! B-trees through an attached [`Pager`], one mini-transaction per
//! batch, while a host-side shadow journal records the same operations
//! logically. After a simulated crash at any durable-log LSN `k`,
//! [`OracleWorkload::check_crash_point`] recovers the world from the
//! crashed disk image plus log prefix, replays the shadow journal for
//! exactly the mini-transactions whose commits survived, and diffs the
//! full recovered tree contents byte-for-byte. Because write-ahead
//! guarantees a committed full-page image precedes every disk write,
//! the oracle must come back green at every `k` under any
//! [`DiskFaultPlan`] — torn writes, lost writes and bit flips included.

use crate::pager::Pager;
use crate::{BTree, Env, PageAlloc, RecoveredWorld};
use std::collections::BTreeMap;
use tls_core::DiskFaultPlan;
use tls_trace::{Addr, Pc};

const TREE_SPECS: [(u16, u16); 2] = [(16, 0x30), (40, 0x31)]; // (value_size, module)
/// The secondary-index tree of the indexed workload: 8-byte entries
/// mapping `index_key(k)` back to `k` for every row of tree 0.
const INDEX_SPEC: (u16, u16) = (8, 0x32);
const UPDATE_PC: Pc = Pc::new(0x3F, 0);
const OPS_PER_MTR: usize = 8;
const INITIAL_ROWS: u64 = 1500;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn row(tree: usize, bits: u64) -> Vec<u8> {
    let len = TREE_SPECS[tree].0 as usize;
    bits.to_le_bytes().iter().cycle().take(len).copied().collect()
}

/// The index key of base key `k`: an odd-multiplier bijection, so index
/// order is unrelated to base order and index leaves churn independently.
fn index_key(k: u64) -> u64 {
    k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One logical operation of the shadow journal.
#[derive(Debug, Clone)]
enum ShadowOp {
    Insert(usize, u64, Vec<u8>),
    Update(usize, u64, Vec<u8>),
    Delete(usize, u64),
}

/// A finished oracle run: the live environment (pager attached) plus
/// everything needed to check any crash point.
pub struct OracleWorkload {
    /// The environment after the workload, pager still attached.
    pub env: Env,
    trees: Vec<BTree>,
    /// `(meta, value_size, module)` for re-opening trees in a recovered
    /// world.
    tree_meta: Vec<(Addr, u16, u16)>,
    /// Logical contents at the bootstrap checkpoint.
    initial: BTreeMap<(usize, u64), Vec<u8>>,
    /// One batch of shadow ops per mini-transaction, in commit order.
    shadow: Vec<Vec<ShadowOp>>,
}

/// Runs the shadowed workload: `mtrs` mini-transactions of seeded
/// operations over two trees, through a pool of `frames` frames whose
/// disk applies `plan`. The initial load is sized so the working set
/// comfortably exceeds small pools, forcing real eviction/flush traffic.
pub fn run_workload(
    seed: u64,
    mtrs: usize,
    frames: usize,
    plan: DiskFaultPlan,
    observe: bool,
) -> OracleWorkload {
    run_with_index(seed, mtrs, frames, plan, observe, false)
}

/// The indexed variant of [`run_workload`]: a third tree acts as a
/// secondary index over tree 0 (`index_key(k) → k`), maintained in the
/// same mini-transaction as every base insert and delete. Its entries
/// join the shadow journal, so every crash-point check diffs REDO replay
/// *including* the recovered secondary-index contents.
pub fn run_indexed_workload(
    seed: u64,
    mtrs: usize,
    frames: usize,
    plan: DiskFaultPlan,
    observe: bool,
) -> OracleWorkload {
    run_with_index(seed, mtrs, frames, plan, observe, true)
}

fn run_with_index(
    seed: u64,
    mtrs: usize,
    frames: usize,
    plan: DiskFaultPlan,
    observe: bool,
    indexed: bool,
) -> OracleWorkload {
    let mut env = Env::new();
    let alloc = PageAlloc::new(&mut env, 0x2F);
    let mut specs: Vec<(u16, u16)> = TREE_SPECS.to_vec();
    if indexed {
        specs.push(INDEX_SPEC);
    }
    let trees: Vec<BTree> =
        specs.iter().map(|&(vs, m)| BTree::create(&mut env, &alloc, vs, m)).collect();
    let tree_meta: Vec<(Addr, u16, u16)> =
        trees.iter().zip(&specs).map(|(t, &(vs, m))| (t.meta_region().0, vs, m)).collect();
    // Random operations target the base trees only; the index (when
    // present) is maintained, never targeted. Keeping the draw modulus at
    // the base count keeps the unindexed workload byte-identical to what
    // it recorded before the index existed.
    let base = TREE_SPECS.len();
    let idx = indexed.then(|| trees[base]);

    // Initial load (direct mode: becomes the bootstrap checkpoint).
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0AC1_E0FF_5EED_0001;
    let mut model: BTreeMap<(usize, u64), Vec<u8>> = BTreeMap::new();
    for i in 0..INITIAL_ROWS {
        for (ti, tree) in trees.iter().take(base).enumerate() {
            let key = i * 7 + ti as u64;
            let val = row(ti, splitmix64(&mut rng));
            assert!(tree.insert(&mut env, &alloc, key, &val));
            model.insert((ti, key), val);
            if ti == 0 {
                if let Some(ix) = &idx {
                    let entry = key.to_le_bytes().to_vec();
                    assert!(ix.insert(&mut env, &alloc, index_key(key), &entry));
                    model.insert((base, index_key(key)), entry);
                }
            }
        }
    }
    let initial = model.clone();

    // Attach the pool; everything after this is logged and crashable.
    let permanents: Vec<(Addr, u64)> = trees.iter().map(|t| t.meta_region()).collect();
    let pager = Box::new(Pager::new(&mut env, frames, plan, observe));
    env.attach_pager(pager, &permanents);

    let mut shadow = Vec::with_capacity(mtrs);
    for _ in 0..mtrs {
        env.mtr_begin();
        let mut batch = Vec::with_capacity(OPS_PER_MTR);
        for _ in 0..OPS_PER_MTR {
            let ti = (splitmix64(&mut rng) % base as u64) as usize;
            let tree = trees[ti];
            let kind = splitmix64(&mut rng) % 10;
            if kind < 5 {
                // Insert a fresh key (fall back to update on collision).
                let key = splitmix64(&mut rng) % 4096;
                let val = row(ti, splitmix64(&mut rng));
                if model.insert((ti, key), val.clone()).is_some() {
                    let addr = tree.get_addr(&mut env, key).expect("modeled key exists");
                    env.write_from(UPDATE_PC, addr, &val);
                    batch.push(ShadowOp::Update(ti, key, val));
                } else {
                    assert!(tree.insert(&mut env, &alloc, key, &val));
                    batch.push(ShadowOp::Insert(ti, key, val));
                    if ti == 0 {
                        if let Some(ix) = &idx {
                            let entry = key.to_le_bytes().to_vec();
                            assert!(ix.insert(&mut env, &alloc, index_key(key), &entry));
                            model.insert((base, index_key(key)), entry.clone());
                            batch.push(ShadowOp::Insert(base, index_key(key), entry));
                        }
                    }
                }
            } else if kind < 8 {
                // Update an existing key of this tree.
                let keys: Vec<u64> =
                    model.range((ti, 0)..(ti + 1, 0)).map(|((_, k), _)| *k).collect();
                if keys.is_empty() {
                    continue;
                }
                let key = keys[(splitmix64(&mut rng) % keys.len() as u64) as usize];
                let val = row(ti, splitmix64(&mut rng));
                let addr = tree.get_addr(&mut env, key).expect("modeled key exists");
                env.write_from(UPDATE_PC, addr, &val);
                model.insert((ti, key), val.clone());
                batch.push(ShadowOp::Update(ti, key, val));
            } else {
                // Delete an existing key.
                let keys: Vec<u64> =
                    model.range((ti, 0)..(ti + 1, 0)).map(|((_, k), _)| *k).collect();
                if keys.is_empty() {
                    continue;
                }
                let key = keys[(splitmix64(&mut rng) % keys.len() as u64) as usize];
                assert!(tree.delete(&mut env, key));
                model.remove(&(ti, key));
                batch.push(ShadowOp::Delete(ti, key));
                if ti == 0 {
                    if let Some(ix) = &idx {
                        assert!(ix.delete(&mut env, index_key(key)));
                        model.remove(&(base, index_key(key)));
                        batch.push(ShadowOp::Delete(base, index_key(key)));
                    }
                }
            }
        }
        env.mtr_end();
        shadow.push(batch);
    }

    OracleWorkload { env, trees, tree_meta, initial, shadow }
}

impl OracleWorkload {
    /// The pager (always attached after [`run_workload`]).
    pub fn pager(&self) -> &Pager {
        self.env.pager().expect("oracle runs paged")
    }

    /// Upper bound of the crash grid: every `k` in `0..=last_lsn()` is a
    /// distinct crash point.
    pub fn last_lsn(&self) -> u64 {
        self.pager().last_lsn()
    }

    /// The trees of the live (non-recovered) world, for direct checks.
    pub fn trees(&self) -> &[BTree] {
        &self.trees
    }

    /// The expected logical contents after `durable_mtrs` committed
    /// batches: the initial load with that shadow prefix replayed.
    fn expected_contents(&self, durable_mtrs: u64) -> BTreeMap<(usize, u64), Vec<u8>> {
        let mut m = self.initial.clone();
        for batch in self.shadow.iter().take(durable_mtrs as usize) {
            for op in batch {
                match op {
                    ShadowOp::Insert(t, k, v) | ShadowOp::Update(t, k, v) => {
                        m.insert((*t, *k), v.clone());
                    }
                    ShadowOp::Delete(t, k) => {
                        m.remove(&(*t, *k));
                    }
                }
            }
        }
        m
    }

    /// Full logical contents of a recovered world, scanned through the
    /// recovered trees (no pager: scans are direct).
    fn recovered_contents(&self, world: RecoveredWorld) -> BTreeMap<(usize, u64), Vec<u8>> {
        let mut renv = Env::new();
        renv.mem = world.mem;
        let mut out = BTreeMap::new();
        for (ti, &(meta, vs, module)) in self.tree_meta.iter().enumerate() {
            let tree = BTree::open_existing(meta, vs, module);
            tree.scan_from(&mut renv, 0, |env, k, addr| {
                out.insert((ti, k), env.mem.bytes(addr, vs as usize).to_vec());
                true
            });
        }
        out
    }

    /// Crash at durable-log LSN `k`, recover, and diff the full logical
    /// contents against the shadow journal. `Ok` carries the recovery
    /// audit; `Err` describes the first divergence (or any quarantined
    /// page — under the standard fault grid quarantine is unreachable,
    /// because write-ahead puts a committed full-page image before every
    /// disk write).
    pub fn check_crash_point(&self, k: u64) -> Result<RecoveredWorld, String> {
        let world = self.pager().crash_point(k);
        if !world.quarantined.is_empty() {
            return Err(format!(
                "crash at lsn {k}: {} page(s) quarantined: {}",
                world.quarantined.len(),
                world
                    .quarantined
                    .iter()
                    .map(|q| format!("{:#x} ({})", q.region, q.reason))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let expected = self.expected_contents(world.durable_mtrs);
        let audit =
            (world.durable_mtrs, world.durable_lsn, world.images_applied, world.deltas_applied);
        let actual = self.recovered_contents(world);
        if actual != expected {
            let missing: Vec<_> =
                expected.keys().filter(|k| !actual.contains_key(k)).take(5).collect();
            let extra: Vec<_> =
                actual.keys().filter(|k| !expected.contains_key(k)).take(5).collect();
            let differing: Vec<_> = expected
                .iter()
                .filter(|(k, v)| actual.get(k).is_some_and(|a| a != *v))
                .map(|(k, _)| k)
                .take(5)
                .collect();
            return Err(format!(
                "crash at lsn {k} ({} durable mtrs): recovered contents diverge — \
                 {} expected rows vs {} recovered; missing {missing:?}, extra {extra:?}, \
                 differing {differing:?}",
                audit.0,
                expected.len(),
                actual.len()
            ));
        }
        // Re-materialize for the caller (RecoveredWorld is consumed by
        // the scan above).
        Ok(self.pager().crash_point(k))
    }

    /// Checks every crash point `0..=last_lsn()`, returning the first
    /// failure.
    pub fn check_all_crash_points(&self) -> Result<u64, String> {
        let last = self.last_lsn();
        for k in 0..=last {
            self.check_crash_point(k)?;
        }
        Ok(last + 1)
    }
}
