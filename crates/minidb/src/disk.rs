//! The simulated disk: the crash-durable image the pager flushes to.
//!
//! A real buffer pool sits between volatile memory and a disk that
//! survives crashes but fails in its own ways — writes tear at sector
//! boundaries, queued writes get dropped, media flips bits. [`SimDisk`]
//! models exactly that surface, host-side (its contents are *not* part
//! of the simulated address space — disk bytes are only observable to
//! the engine through the pager, which reads them back into simulated
//! memory and records those accesses).
//!
//! Every write after the bootstrap checkpoint is numbered and consults a
//! [`DiskFaultPlan`]; the journal of `(wal-lsn-at-write, region, bytes)`
//! entries makes any crash point reconstructible: a crash at LSN `k`
//! exposes exactly the writes issued while the durable log held ≤ `k`
//! records ([`SimDisk::crash_image`]).

use std::collections::HashMap;
use tls_core::{DiskFaultClass, DiskFaultPlan};

/// One applied fault, for evidence files and assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFault {
    /// Post-checkpoint write index the fault hit.
    pub at_write: u64,
    /// What went wrong.
    pub class: DiskFaultClass,
    /// Region the faulted write targeted.
    pub region: u64,
    /// Class argument (tear boundary / flipped bit index).
    pub arg: u64,
}

#[derive(Debug, Clone)]
struct JournalEntry {
    /// [`DurableWal::last_lsn`](crate::DurableWal::last_lsn) when the
    /// write was issued — write-ahead means every record covering this
    /// write already had an LSN ≤ this.
    lsn_at_write: u64,
    region: u64,
    /// The bytes that actually landed (post-fault).
    bytes: Vec<u8>,
}

/// The simulated disk image: one envelope-encoded blob per region, plus
/// the write journal that reconstructs the image at any crash point.
#[derive(Debug, Default)]
pub struct SimDisk {
    /// Bootstrap checkpoint: region → envelope bytes, written fault-free
    /// when the pager attaches (a clean `mkfs`, before any faults can
    /// fire).
    checkpoint: HashMap<u64, Vec<u8>>,
    journal: Vec<JournalEntry>,
    plan: DiskFaultPlan,
    faults: Vec<AppliedFault>,
    /// Post-checkpoint writes issued, including lost ones — the fault
    /// plan indexes this, not the journal (a lost write leaves no
    /// journal entry but still consumes its write slot).
    writes: u64,
}

impl SimDisk {
    /// An empty disk with no fault plan.
    pub fn new() -> Self {
        SimDisk::default()
    }

    /// Installs the fault plan consulted by subsequent writes.
    pub fn set_plan(&mut self, plan: DiskFaultPlan) {
        self.plan = plan;
    }

    /// Writes the bootstrap copy of a region. Exempt from faults and the
    /// journal: it models the initial database files, already durable
    /// before the measured run (a faulted checkpoint would make pages
    /// unrecoverable through no fault of the recovery protocol).
    pub fn bootstrap(&mut self, region: u64, envelope: Vec<u8>) {
        self.checkpoint.insert(region, envelope);
    }

    /// Writes a region's envelope, applying any planned fault for this
    /// write index. `lsn_at_write` stamps the journal entry with the
    /// durable log position, so crash images can be cut at any LSN.
    pub fn write(&mut self, region: u64, envelope: Vec<u8>, lsn_at_write: u64) {
        let idx = self.writes;
        self.writes += 1;
        let bytes = match self.plan.for_write(idx) {
            None => envelope,
            Some(ev) => {
                self.faults.push(AppliedFault {
                    at_write: idx,
                    class: ev.class,
                    region,
                    arg: ev.arg,
                });
                match ev.class {
                    // A lost write never reaches the platter: no journal
                    // entry, the previous image persists.
                    DiskFaultClass::LostWrite => return,
                    DiskFaultClass::TornWrite => {
                        // Prefix of the new write lands; the tail keeps
                        // the previous contents (zero-filled where the
                        // old image was shorter or absent).
                        let cut = (ev.arg as usize) % envelope.len().max(1);
                        let old = self.image_of(region).unwrap_or_default();
                        let mut torn = envelope[..cut].to_vec();
                        if old.len() > cut {
                            torn.extend_from_slice(&old[cut..]);
                        } else {
                            torn.resize(envelope.len(), 0);
                        }
                        torn
                    }
                    DiskFaultClass::BitFlip => {
                        let mut bad = envelope;
                        let nbits = (bad.len() as u64 * 8).max(1);
                        let bit = ev.arg % nbits;
                        bad[(bit / 8) as usize] ^= 1 << (bit % 8);
                        bad
                    }
                }
            }
        };
        self.journal.push(JournalEntry { lsn_at_write, region, bytes });
    }

    /// The current (latest) image of a region, if any write or bootstrap
    /// copy exists.
    pub fn image_of(&self, region: u64) -> Option<Vec<u8>> {
        self.journal
            .iter()
            .rev()
            .find(|e| e.region == region)
            .map(|e| e.bytes.clone())
            .or_else(|| self.checkpoint.get(&region).cloned())
    }

    /// The disk as a crash at durable-log position `k` would leave it:
    /// bootstrap checkpoint plus every journaled write issued at
    /// `lsn_at_write <= k`, in order.
    pub fn crash_image(&self, k: u64) -> HashMap<u64, Vec<u8>> {
        let mut image = self.checkpoint.clone();
        for e in self.journal.iter().filter(|e| e.lsn_at_write <= k) {
            image.insert(e.region, e.bytes.clone());
        }
        image
    }

    /// The latest full image (no crash cut).
    pub fn full_image(&self) -> HashMap<u64, Vec<u8>> {
        self.crash_image(u64::MAX)
    }

    /// Number of post-checkpoint writes issued (including lost ones —
    /// a lost write still consumes a write index).
    pub fn writes_issued(&self) -> u64 {
        self.writes
    }

    /// Faults applied so far, in write order.
    pub fn faults_injected(&self) -> &[AppliedFault] {
        &self.faults
    }

    /// Regions present on disk (checkpoint or journaled).
    pub fn regions(&self) -> Vec<u64> {
        let mut rs: Vec<u64> = self.full_image().into_keys().collect();
        rs.sort_unstable();
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tls_core::DiskFaultPlan;

    #[test]
    fn journal_replays_to_any_crash_point() {
        let mut d = SimDisk::new();
        d.bootstrap(0x1000, vec![0; 8]);
        d.write(0x1000, vec![1; 8], 3);
        d.write(0x2000, vec![2; 8], 5);
        d.write(0x1000, vec![3; 8], 9);

        let at2 = d.crash_image(2);
        assert_eq!(at2[&0x1000], vec![0; 8], "write at lsn 3 not yet durable");
        assert!(!at2.contains_key(&0x2000));

        let at5 = d.crash_image(5);
        assert_eq!(at5[&0x1000], vec![1; 8]);
        assert_eq!(at5[&0x2000], vec![2; 8]);

        let full = d.full_image();
        assert_eq!(full[&0x1000], vec![3; 8]);
        assert_eq!(d.image_of(0x1000), Some(vec![3; 8]));
    }

    #[test]
    fn lost_write_leaves_the_previous_image() {
        let mut d = SimDisk::new();
        d.set_plan(DiskFaultPlan::single(DiskFaultClass::LostWrite, 0, 0));
        d.bootstrap(0x1000, vec![7; 4]);
        d.write(0x1000, vec![9; 4], 1);
        assert_eq!(d.image_of(0x1000), Some(vec![7; 4]));
        assert_eq!(d.faults_injected().len(), 1);
        // The lost write consumed index 0; the next write is index 1 and
        // lands cleanly.
        d.write(0x1000, vec![9; 4], 2);
        assert_eq!(d.image_of(0x1000), Some(vec![9; 4]));
    }

    #[test]
    fn torn_write_mixes_new_prefix_with_old_tail() {
        let mut d = SimDisk::new();
        d.set_plan(DiskFaultPlan::single(DiskFaultClass::TornWrite, 0, 3));
        d.bootstrap(0x1000, vec![7; 8]);
        d.write(0x1000, vec![9; 8], 1);
        assert_eq!(d.image_of(0x1000), Some(vec![9, 9, 9, 7, 7, 7, 7, 7]));
    }

    #[test]
    fn torn_write_with_no_prior_image_zero_fills() {
        let mut d = SimDisk::new();
        d.set_plan(DiskFaultPlan::single(DiskFaultClass::TornWrite, 0, 2));
        d.write(0x3000, vec![9; 4], 1);
        assert_eq!(d.image_of(0x3000), Some(vec![9, 9, 0, 0]));
    }

    #[test]
    fn bit_flip_flips_exactly_one_bit() {
        let mut d = SimDisk::new();
        d.set_plan(DiskFaultPlan::single(DiskFaultClass::BitFlip, 0, 13));
        d.write(0x1000, vec![0; 4], 1);
        assert_eq!(d.image_of(0x1000), Some(vec![0, 1 << 5, 0, 0]));
    }

    #[test]
    fn bootstrap_writes_are_fault_exempt() {
        let mut d = SimDisk::new();
        d.set_plan(DiskFaultPlan::single(DiskFaultClass::BitFlip, 0, 0));
        d.bootstrap(0x1000, vec![5; 4]);
        assert_eq!(d.image_of(0x1000), Some(vec![5; 4]));
        assert!(d.faults_injected().is_empty());
    }
}
