//! The database back end: catalog, logging policy, optimization levels.

use crate::btree::PageAlloc;
use crate::wal::{LocalLog, Wal};
use crate::{BTree, Env};
use serde::{Deserialize, Serialize};
use tls_trace::{Addr, LatchId, Pc};

/// Well-known latches of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatchName {
    /// Protects the shared log tail.
    Log,
    /// Protects the page allocator.
    PageAlloc,
    /// Protects the global statistics counters.
    Stats,
    /// Protects the buffer-pool frame directory.
    Pager,
}

impl LatchName {
    /// The latch id used in traces.
    pub fn id(self) -> LatchId {
        LatchId(match self {
            LatchName::Log => 0,
            LatchName::PageAlloc => 1,
            LatchName::Stats => 2,
            LatchName::Pager => 3,
        })
    }
}

/// Which dependence-removal optimizations are applied to the engine —
/// the knobs of the paper's §3.2 iterative tuning process. Each flag
/// removes one *class* of cross-thread dependence the profiler surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptLevel {
    /// Replace the shared log tail with per-thread log buffers.
    pub per_thread_log: bool,
    /// Drop the global row-count statistics counters.
    pub no_global_stats: bool,
    /// Remove latches from the log and allocator fast paths.
    pub latch_free: bool,
}

impl OptLevel {
    /// The unmodified engine: every dependence present.
    pub fn none() -> Self {
        OptLevel { per_thread_log: false, no_global_stats: false, latch_free: false }
    }

    /// The fully TLS-tuned engine the paper evaluates.
    pub fn fully_optimized() -> Self {
        OptLevel { per_thread_log: true, no_global_stats: true, latch_free: true }
    }

    /// The cumulative tuning sequence, in the order the profiler surfaces
    /// the dependences (run `tuning_curve` to see each step's profile
    /// pointing at the next): `(step name, configuration)`.
    pub fn tuning_steps() -> Vec<(&'static str, OptLevel)> {
        vec![
            ("unoptimized", OptLevel::none()),
            ("+ remove global statistics", OptLevel { no_global_stats: true, ..OptLevel::none() }),
            (
                "+ per-thread log buffers",
                OptLevel { per_thread_log: true, no_global_stats: true, latch_free: false },
            ),
            ("+ latch-free structures", OptLevel::fully_optimized()),
        ]
    }
}

const DB_MODULE: u16 = 0x08;
const SITE_STATS: u16 = 8;

/// The engine: shared allocator, log, statistics and tree catalog glue.
/// Copyable: all state lives in simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct Db {
    /// Page allocator shared by all trees.
    pub alloc: PageAlloc,
    /// The shared write-ahead log.
    pub wal: Wal,
    /// Active optimization level.
    pub opts: OptLevel,
    stats_cell: Addr,
}

impl Db {
    /// Creates the engine state inside `env`.
    pub fn new(env: &mut Env, opts: OptLevel) -> Self {
        let alloc = PageAlloc::new(env, DB_MODULE);
        let wal = Wal::new(env, 1 << 20, DB_MODULE, LatchName::Log.id());
        let stats_cell = env.alloc(8, 8);
        env.mem.poke_u64(stats_cell, 0);
        Db { alloc, wal, opts, stats_cell }
    }

    /// Creates a table (a B+-tree) with rows of `value_size` bytes,
    /// profiled under `module`.
    pub fn create_tree(&self, env: &mut Env, value_size: u16, module: u16) -> BTree {
        BTree::create(env, &self.alloc, value_size, module)
    }

    /// Allocates a per-thread log buffer (used by epochs when
    /// `per_thread_log` is on).
    pub fn local_log(&self, env: &mut Env) -> LocalLog {
        LocalLog::new(env, 1 << 14, DB_MODULE)
    }

    /// Logs a row modification of `payload` bytes, honoring the
    /// optimization level: per-thread buffer if available and enabled,
    /// otherwise the shared tail (latched unless latch-free).
    ///
    /// # Panics
    ///
    /// Panics if a single record cannot fit the shared log buffer — row
    /// payloads are bounded well below the 1 MiB buffer, so an oversized
    /// record is an engine bug, not a runtime condition.
    pub fn log(&self, env: &mut Env, payload: u64, local: Option<&mut LocalLog>) {
        match (self.opts.per_thread_log, local) {
            (true, Some(buf)) => buf.append(env, payload),
            _ => self
                .wal
                .append(env, payload, !self.opts.latch_free)
                .unwrap_or_else(|e| panic!("row log append failed: {e}")),
        }
    }

    /// Commits a speculative thread's private log buffer: one shared LSN
    /// reservation covering everything it appended. Call at the end of
    /// each epoch body when `per_thread_log` is enabled.
    ///
    /// # Panics
    ///
    /// Panics if the buffer's contents exceed the shared log capacity
    /// (local buffers are 16 KiB against a 1 MiB shared log, so this is
    /// unreachable absent an engine bug).
    pub fn log_commit(&self, env: &mut Env, local: &LocalLog) {
        if self.opts.per_thread_log {
            self.wal
                .reserve(env, local.used().max(8), !self.opts.latch_free)
                .unwrap_or_else(|e| panic!("log commit reservation failed: {e}"));
        }
    }

    /// Bumps the global modified-row statistics counter (a recorded
    /// read-modify-write on a shared cell), unless optimized away.
    pub fn bump_stats(&self, env: &mut Env) {
        if self.opts.no_global_stats {
            return;
        }
        let pc = Pc::new(DB_MODULE, SITE_STATS);
        if !self.opts.latch_free {
            env.latch_acquire(pc, LatchName::Stats.id());
        }
        let n = env.load_u64(pc, self.stats_cell);
        env.alu(pc, 2);
        env.store_u64(pc, self.stats_cell, n + 1);
        if !self.opts.latch_free {
            env.latch_release(pc, LatchName::Stats.id());
        }
    }

    /// Rows counted by the statistics (unrecorded, for tests).
    pub fn stats_count(&self, env: &Env) -> u64 {
        env.mem.peek_u64(self.stats_cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tls_trace::OpKind;

    #[test]
    fn trees_share_the_allocator() {
        let mut env = Env::new();
        let db = Db::new(&mut env, OptLevel::none());
        let _a = db.create_tree(&mut env, 16, 0x10);
        let _b = db.create_tree(&mut env, 32, 0x11);
        assert_eq!(db.alloc.pages(&env), 2);
    }

    #[test]
    fn stats_bump_is_a_shared_rmw_unless_optimized() {
        let mut env = Env::new();
        let db = Db::new(&mut env, OptLevel::none());
        env.rec.start("t", false);
        db.bump_stats(&mut env);
        let p = env.rec.finish();
        assert_eq!(db.stats_count(&env), 1);
        assert!(p.iter_ops().any(|o| matches!(o.kind(), OpKind::LatchAcquire(_))));
        assert!(p.iter_ops().any(|o| o.is_store()));

        let db2 = Db { opts: OptLevel::fully_optimized(), ..db };
        env.rec.start("t2", false);
        db2.bump_stats(&mut env);
        let p2 = env.rec.finish();
        assert_eq!(p2.total_ops(), 0, "optimized stats are free");
    }

    #[test]
    fn log_routes_by_optimization_level() {
        let mut env = Env::new();
        let db = Db::new(&mut env, OptLevel::fully_optimized());
        let mut local = db.local_log(&mut env);
        db.log(&mut env, 32, Some(&mut local));
        assert_eq!(db.wal.tail(&env), 0, "shared tail untouched");
        assert!(local.used() > 0);

        let db_unopt = Db { opts: OptLevel::none(), ..db };
        db_unopt.log(&mut env, 32, None);
        assert!(db_unopt.wal.tail(&env) > 0);
    }

    #[test]
    fn tuning_steps_are_monotone() {
        let steps = OptLevel::tuning_steps();
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0].1, OptLevel::none());
        assert_eq!(steps[3].1, OptLevel::fully_optimized());
    }
}
