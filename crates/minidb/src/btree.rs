//! B+-trees over fixed-cell pages.
//!
//! Interior nodes hold `(separator, child)` cells plus a leftmost child in
//! the header's `next` field; leaves hold `(key, row)` cells and are
//! doubly linked for scans. Splits allocate pages through the shared
//! [`PageAlloc`] counter — a deliberately shared structure, because
//! concurrent splits inside speculative threads are one of the paper's
//! "dependences deep within the database system".

use crate::page::{Page, PageKind, PAGE_SIZE};
use crate::Env;
use tls_trace::{Addr, Pc};

const SITE_META_R: u16 = 16;
const SITE_META_W: u16 = 17;
const SITE_DESCEND: u16 = 18;
const SITE_ALLOC: u16 = 19;
const SITE_COUNT: u16 = 20;

/// The shared page allocator: a counter cell in simulated memory.
///
/// Allocation performs a recorded read-modify-write of the counter, so
/// two speculative threads that both split a page race on it — a genuine,
/// occasional cross-thread dependence.
#[derive(Debug, Clone, Copy)]
pub struct PageAlloc {
    counter: Addr,
    module: u16,
}

impl PageAlloc {
    /// Creates the allocator state.
    pub fn new(env: &mut Env, module: u16) -> Self {
        let counter = env.alloc(8, 8);
        env.mem.poke_u64(counter, 0);
        PageAlloc { counter, module }
    }

    /// Allocates one page, bumping the shared counter (recorded).
    pub fn alloc_page(&self, env: &mut Env) -> Addr {
        let pc = Pc::new(self.module, SITE_ALLOC);
        let n = env.load_u64(pc, self.counter);
        env.alu(pc, 3);
        env.store_u64(pc, self.counter, n + 1);
        let addr = env.alloc(PAGE_SIZE, PAGE_SIZE);
        env.register_page(addr);
        addr
    }

    /// Pages allocated so far.
    pub fn pages(&self, env: &Env) -> u64 {
        env.mem.peek_u64(self.counter)
    }
}

const INTERNAL_CELL: u16 = 16;

/// A B+-tree handle. All tree state lives in simulated memory; the handle
/// is freely copyable.
///
/// The meta block keeps a maintained **entry count**, updated by every
/// insert and delete — standard engine bookkeeping (query planners and
/// monitoring read it), and a genuine cross-thread dependence when
/// speculative threads modify the same table: the paper's "data
/// dependences ... deep within the database system in very complex and
/// varied code paths".
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    /// Meta block: `[root addr][height][first leaf addr][entry count]`.
    meta: Addr,
    value_size: u16,
    module: u16,
}

impl BTree {
    /// Creates an empty tree whose rows are exactly `value_size` bytes.
    pub fn create(env: &mut Env, alloc: &PageAlloc, value_size: u16, module: u16) -> Self {
        let meta = env.alloc(32, 8);
        let root = alloc.alloc_page(env);
        Page::format(env, root, PageKind::Leaf, value_size + 8, module);
        env.mem.poke_u64(meta, root.0);
        env.mem.poke_u64(meta.offset(8), 1);
        env.mem.poke_u64(meta.offset(16), root.0);
        env.mem.poke_u64(meta.offset(24), 0);
        BTree { meta, value_size, module }
    }

    /// Re-opens a tree from its meta block address — used to read a
    /// [`RecoveredWorld`](crate::RecoveredWorld), where trees exist at
    /// their original addresses but no catalog survived.
    pub fn open_existing(meta: Addr, value_size: u16, module: u16) -> Self {
        BTree { meta, value_size, module }
    }

    /// The tree's meta block as a `(base, len)` region, for registering
    /// it with the pager as a permanent (always-resident) region.
    pub fn meta_region(&self) -> (Addr, u64) {
        (self.meta, 32)
    }

    /// Opens a page through the buffer pool: pins it for the current
    /// mini-transaction (recorded frame traffic), a no-op in direct
    /// mode.
    fn open_page(&self, env: &mut Env, base: Addr) -> Page {
        env.pin_page(base);
        Page::open(base, self.module)
    }

    /// The profiling module id of this tree.
    pub fn module(&self) -> u16 {
        self.module
    }

    /// Row width in bytes.
    pub fn value_size(&self) -> u16 {
        self.value_size
    }

    fn pc(&self, site: u16) -> Pc {
        Pc::new(self.module, site)
    }

    fn root(&self, env: &mut Env) -> Addr {
        Addr(env.load_u64(self.pc(SITE_META_R), self.meta))
    }

    fn height(&self, env: &mut Env) -> u64 {
        env.load_u64(self.pc(SITE_META_R), self.meta.offset(8))
    }

    /// Address of the first (leftmost) leaf.
    pub fn first_leaf(&self, env: &mut Env) -> Addr {
        Addr(env.load_u64(self.pc(SITE_META_R), self.meta.offset(16)))
    }

    /// The maintained entry count (recorded read).
    pub fn entry_count(&self, env: &mut Env) -> u64 {
        env.load_u64(self.pc(SITE_COUNT), self.meta.offset(24))
    }

    /// Adjusts the maintained entry count by `delta` (recorded RMW on the
    /// shared meta block).
    fn bump_count(&self, env: &mut Env, delta: i64) {
        let pc = self.pc(SITE_COUNT);
        let n = env.load_u64(pc, self.meta.offset(24));
        env.alu(pc, 1);
        env.store_u64(pc, self.meta.offset(24), n.wrapping_add(delta as u64));
    }

    /// Descends to the leaf that owns `key`. When `path` is given it
    /// collects `(interior page, descent index)` pairs, root first.
    fn descend(&self, env: &mut Env, key: u64, mut path: Option<&mut Vec<(Page, u16)>>) -> Page {
        let root = self.root(env);
        let mut node = self.open_page(env, root);
        let mut level = self.height(env);
        while level > 1 {
            let idx = match node.find(env, key) {
                Ok(i) => i + 1, // child at cell i covers keys >= sep
                Err(i) => i,
            };
            let child = if idx == 0 {
                node.next(env) // leftmost child lives in the header
            } else {
                let a = node.value_addr(env, idx - 1);
                Addr(env.load_u64(self.pc(SITE_DESCEND), a))
            };
            if let Some(p) = path.as_deref_mut() {
                p.push((node, idx));
            }
            node = self.open_page(env, child);
            level -= 1;
        }
        node
    }

    /// Looks up `key`, returning the address of its row for recorded
    /// field-granularity access.
    pub fn get_addr(&self, env: &mut Env, key: u64) -> Option<Addr> {
        let leaf = self.descend(env, key, None);
        match leaf.find(env, key) {
            Ok(i) => Some(leaf.value_addr(env, i)),
            Err(_) => None,
        }
    }

    /// Reads the row for `key` into `buf` (`value_size` bytes).
    pub fn get(&self, env: &mut Env, key: u64, buf: &mut [u8]) -> bool {
        let leaf = self.descend(env, key, None);
        match leaf.find(env, key) {
            Ok(i) => {
                leaf.read_value(env, i, buf);
                true
            }
            Err(_) => false,
        }
    }

    /// Inserts `key → value`. Returns false if the key already exists.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not `value_size` bytes.
    pub fn insert(&self, env: &mut Env, alloc: &PageAlloc, key: u64, value: &[u8]) -> bool {
        assert_eq!(value.len(), self.value_size as usize, "row width mismatch");
        let mut path = Vec::new();
        let leaf = self.descend(env, key, Some(&mut path));
        let mut at = match leaf.find(env, key) {
            Ok(_) => return false,
            Err(i) => i,
        };
        let mut target = leaf;
        let cell = self.value_size + 8;
        if leaf.ncells(env) == Page::capacity(cell) {
            // Split the leaf; the new cell goes left or right of the
            // separator.
            let (sep, right) = self.split_leaf(env, alloc, leaf);
            if key >= sep {
                target = right;
                at = target.find(env, key).expect_err("key was absent");
            }
            self.insert_sep(env, alloc, &mut path, sep, right.base);
        }
        target.insert_at(env, at, key, value);
        self.bump_count(env, 1);
        true
    }

    fn split_leaf(&self, env: &mut Env, alloc: &PageAlloc, leaf: Page) -> (u64, Page) {
        let base = alloc.alloc_page(env);
        let right = Page::format(env, base, PageKind::Leaf, self.value_size + 8, self.module);
        let sep = leaf.split_into(env, right);
        // Stitch the leaf chain.
        let old_next = leaf.next(env);
        right.set_next(env, old_next);
        right.set_prev(env, leaf.base);
        if old_next.0 != 0 {
            self.open_page(env, old_next).set_prev(env, right.base);
        }
        leaf.set_next(env, right.base);
        (sep, right)
    }

    /// Inserts separator `sep → right` into the parent chain, splitting
    /// interior nodes (and growing the root) as needed.
    fn insert_sep(
        &self,
        env: &mut Env,
        alloc: &PageAlloc,
        path: &mut Vec<(Page, u16)>,
        sep: u64,
        right: Addr,
    ) {
        let mut sep = sep;
        let mut right = right;
        while let Some((node, _)) = path.pop() {
            let at = match node.find(env, sep) {
                Ok(_) => panic!("duplicate separator {sep}"),
                Err(i) => i,
            };
            if node.ncells(env) < Page::capacity(INTERNAL_CELL) {
                node.insert_at(env, at, sep, &right.0.to_le_bytes());
                return;
            }
            // Split the interior node with push-up semantics.
            let base = alloc.alloc_page(env);
            let new_right = Page::format(env, base, PageKind::Internal, INTERNAL_CELL, self.module);
            let copied_up = node.split_into(env, new_right);
            // Push up: the first cell of the right node becomes its
            // leftmost child, and its key moves to the parent.
            let child0_slot = new_right.value_addr(env, 0);
            let child0 = Addr(env.load_u64(self.pc(SITE_DESCEND), child0_slot));
            new_right.set_next(env, child0);
            new_right.remove_at(env, 0);
            // Insert the pending separator on the correct side.
            let target = if sep >= copied_up { new_right } else { node };
            let at = target.find(env, sep).expect_err("fresh separator");
            target.insert_at(env, at, sep, &right.0.to_le_bytes());
            sep = copied_up;
            right = new_right.base;
        }
        // Root split: grow the tree.
        let old_root = self.root(env);
        let base = alloc.alloc_page(env);
        let new_root = Page::format(env, base, PageKind::Internal, INTERNAL_CELL, self.module);
        new_root.set_next(env, old_root);
        new_root.insert_at(env, 0, sep, &right.0.to_le_bytes());
        let h = self.height(env);
        env.store_u64(self.pc(SITE_META_W), self.meta, base.0);
        env.store_u64(self.pc(SITE_META_W), self.meta.offset(8), h + 1);
    }

    /// Deletes `key`. Returns false if absent. Pages are never merged
    /// (TPC-C's delete pattern — DELIVERY consuming NEW_ORDER rows —
    /// drains ranges that are not re-inserted, so empty pages simply sit
    /// in the leaf chain and scans skip them).
    pub fn delete(&self, env: &mut Env, key: u64) -> bool {
        let leaf = self.descend(env, key, None);
        match leaf.find(env, key) {
            Ok(i) => {
                leaf.remove_at(env, i);
                self.bump_count(env, -1);
                true
            }
            Err(_) => false,
        }
    }

    /// The smallest entry with key `>= key`, as `(key, row address)`.
    pub fn min_from(&self, env: &mut Env, key: u64) -> Option<(u64, Addr)> {
        let mut leaf = self.descend(env, key, None);
        let mut idx = match leaf.find(env, key) {
            Ok(i) => i,
            Err(i) => i,
        };
        loop {
            if idx < leaf.ncells(env) {
                let k = leaf.key_at(env, idx);
                return Some((k, leaf.value_addr(env, idx)));
            }
            let next = leaf.next(env);
            if next.0 == 0 {
                return None;
            }
            leaf = self.open_page(env, next);
            idx = 0;
        }
    }

    /// Visits entries with key `>= key` in order while `f` returns true.
    pub fn scan_from(
        &self,
        env: &mut Env,
        key: u64,
        mut f: impl FnMut(&mut Env, u64, Addr) -> bool,
    ) {
        let mut leaf = self.descend(env, key, None);
        let mut idx = match leaf.find(env, key) {
            Ok(i) => i,
            Err(i) => i,
        };
        loop {
            while idx < leaf.ncells(env) {
                let k = leaf.key_at(env, idx);
                let v = leaf.value_addr(env, idx);
                if !f(env, k, v) {
                    return;
                }
                idx += 1;
            }
            let next = leaf.next(env);
            if next.0 == 0 {
                return;
            }
            leaf = self.open_page(env, next);
            idx = 0;
        }
    }

    /// Validates the structural invariants of the whole tree (sorted
    /// keys, separator correctness, consistent leaf chain, maintained
    /// entry count). O(n); intended for tests and debugging.
    ///
    /// Returns the list of violations found (empty = healthy).
    pub fn check_invariants(&self, env: &mut Env) -> Vec<String> {
        let mut errors = Vec::new();
        let root = self.root(env);
        let height = self.height(env);
        // 1. Recursive structure: keys sorted, children within separator
        //    bounds, uniform depth.
        let root_page = self.open_page(env, root);
        self.check_node(env, root_page, height, None, None, &mut errors);
        // 2. The leaf chain visits every entry in global order and links
        //    back correctly.
        let first = self.first_leaf(env);
        let mut leaf = self.open_page(env, first);
        let mut prev_base = Addr(0);
        let mut last_key: Option<u64> = None;
        let mut chained = 0u64;
        loop {
            if leaf.prev(env) != prev_base {
                errors.push(format!(
                    "leaf {:?} prev link {:?} != {:?}",
                    leaf.base,
                    leaf.prev(env),
                    prev_base
                ));
            }
            let n = leaf.ncells(env);
            for i in 0..n {
                let k = leaf.key_at(env, i);
                if let Some(lk) = last_key {
                    if k <= lk {
                        errors.push(format!("leaf chain key order broken at {k}"));
                    }
                }
                last_key = Some(k);
                chained += 1;
            }
            let next = leaf.next(env);
            if next.0 == 0 {
                break;
            }
            prev_base = leaf.base;
            leaf = self.open_page(env, next);
        }
        // 3. The maintained count matches the chain.
        let counted = self.entry_count(env);
        if counted != chained {
            errors.push(format!("entry count {counted} != chained entries {chained}"));
        }
        errors
    }

    fn check_node(
        &self,
        env: &mut Env,
        node: Page,
        level: u64,
        lower: Option<u64>,
        upper: Option<u64>,
        errors: &mut Vec<String>,
    ) {
        let n = node.ncells(env);
        let mut prev: Option<u64> = None;
        for i in 0..n {
            let k = node.key_at(env, i);
            if let Some(p) = prev {
                if k <= p {
                    errors.push(format!("node {:?} cell {i}: key {k} <= {p}", node.base));
                }
            }
            if lower.is_some_and(|lo| k < lo) {
                errors.push(format!("node {:?}: key {k} below separator bound", node.base));
            }
            if upper.is_some_and(|hi| k >= hi) {
                errors.push(format!("node {:?}: key {k} above separator bound", node.base));
            }
            prev = Some(k);
        }
        let kind = match node.kind(env) {
            Ok(k) => k,
            Err(e) => {
                errors.push(e.to_string());
                return;
            }
        };
        match (kind, level) {
            (PageKind::Leaf, 1) => {}
            (PageKind::Leaf, l) => {
                errors.push(format!("leaf {:?} at interior level {l}", node.base))
            }
            (PageKind::Internal, 1) => {
                errors.push(format!("interior node {:?} at leaf level", node.base))
            }
            (PageKind::Internal, l) => {
                // Leftmost child: keys below cell 0's separator.
                let first_sep = (n > 0).then(|| node.key_at(env, 0));
                let leftmost = node.next(env);
                let leftmost_page = self.open_page(env, leftmost);
                self.check_node(env, leftmost_page, l - 1, lower, first_sep.or(upper), errors);
                for i in 0..n {
                    let sep = node.key_at(env, i);
                    let child_slot = node.value_addr(env, i);
                    let child = Addr(env.load_u64(self.pc(SITE_DESCEND), child_slot));
                    let next_sep = if i + 1 < n { Some(node.key_at(env, i + 1)) } else { upper };
                    let child_page = self.open_page(env, child);
                    self.check_node(env, child_page, l - 1, Some(sep), next_sep, errors);
                }
            }
        }
    }

    /// Entry count via a full scan (test/debug helper; O(n)).
    pub fn count(&self, env: &mut Env) -> u64 {
        let mut n = 0;
        let first = self.first_leaf(env);
        let mut leaf = self.open_page(env, first);
        loop {
            n += leaf.ncells(env) as u64;
            let next = leaf.next(env);
            if next.0 == 0 {
                return n;
            }
            leaf = self.open_page(env, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn setup(value_size: u16) -> (Env, PageAlloc, BTree) {
        let mut env = Env::new();
        let alloc = PageAlloc::new(&mut env, 1);
        let tree = BTree::create(&mut env, &alloc, value_size, 2);
        (env, alloc, tree)
    }

    fn row(v: u64) -> [u8; 16] {
        let mut r = [0u8; 16];
        r[..8].copy_from_slice(&v.to_le_bytes());
        r
    }

    #[test]
    fn insert_get_round_trip() {
        let (mut env, alloc, t) = setup(16);
        assert!(t.insert(&mut env, &alloc, 42, &row(420)));
        assert!(!t.insert(&mut env, &alloc, 42, &row(999)), "duplicate rejected");
        let mut buf = [0u8; 16];
        assert!(t.get(&mut env, 42, &mut buf));
        assert_eq!(buf, row(420));
        assert!(!t.get(&mut env, 43, &mut buf));
    }

    #[test]
    fn thousands_of_keys_match_a_model() {
        let (mut env, alloc, t) = setup(16);
        let mut model = BTreeMap::new();
        // A mix of ascending and scattered keys across many splits.
        for i in 0..2000u64 {
            let key = (i * 2654435761) % 100_000;
            if model.insert(key, key * 7).is_none() {
                assert!(t.insert(&mut env, &alloc, key, &row(key * 7)), "insert {key}");
            }
        }
        assert_eq!(t.count(&mut env), model.len() as u64);
        for (&k, &v) in &model {
            let mut buf = [0u8; 16];
            assert!(t.get(&mut env, k, &mut buf), "missing {k}");
            assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), v);
        }
        assert!(alloc.pages(&env) > 4, "splits must have happened");
    }

    #[test]
    fn ascending_inserts_keep_scan_order() {
        let (mut env, alloc, t) = setup(16);
        for k in 0..1000u64 {
            assert!(t.insert(&mut env, &alloc, k, &row(k)));
        }
        let mut seen = Vec::new();
        t.scan_from(&mut env, 0, |_, k, _| {
            seen.push(k);
            true
        });
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn scan_from_starts_mid_range_and_stops() {
        let (mut env, alloc, t) = setup(16);
        for k in (0..100u64).map(|i| i * 10) {
            t.insert(&mut env, &alloc, k, &row(k));
        }
        let mut seen = Vec::new();
        t.scan_from(&mut env, 315, |_, k, _| {
            seen.push(k);
            seen.len() < 3
        });
        assert_eq!(seen, vec![320, 330, 340]);
    }

    #[test]
    fn min_from_skips_deleted_ranges() {
        let (mut env, alloc, t) = setup(16);
        for k in 0..500u64 {
            t.insert(&mut env, &alloc, k, &row(k));
        }
        for k in 0..400u64 {
            assert!(t.delete(&mut env, k));
        }
        assert_eq!(t.min_from(&mut env, 0).map(|(k, _)| k), Some(400));
        assert!(!t.delete(&mut env, 0), "already deleted");
        assert_eq!(t.count(&mut env), 100);
    }

    #[test]
    fn get_addr_allows_in_place_field_updates() {
        let (mut env, alloc, t) = setup(16);
        t.insert(&mut env, &alloc, 7, &row(0));
        let addr = t.get_addr(&mut env, 7).unwrap();
        env.store_u64(Pc::new(9, 0), addr.offset(8), 0xFEED);
        let mut buf = [0u8; 16];
        t.get(&mut env, 7, &mut buf);
        assert_eq!(u64::from_le_bytes(buf[8..].try_into().unwrap()), 0xFEED);
    }

    #[test]
    fn deep_trees_grow_and_stay_searchable() {
        let (mut env, alloc, t) = setup(64);
        // 64-byte rows, 72-byte cells, ~56 per leaf; 10k keys forces
        // height >= 3.
        for k in 0..10_000u64 {
            assert!(t.insert(&mut env, &alloc, k, &[7u8; 64]));
        }
        assert!(t.height(&mut env) >= 3, "height {}", t.height(&mut env));
        let mut buf = [0u8; 64];
        assert!(t.get(&mut env, 0, &mut buf));
        assert!(t.get(&mut env, 9_999, &mut buf));
        assert!(!t.get(&mut env, 10_000, &mut buf));
        assert_eq!(t.count(&mut env), 10_000);
    }

    #[test]
    fn invariants_hold_across_mixed_workloads() {
        let (mut env, alloc, t) = setup(16);
        for k in 0..4000u64 {
            t.insert(&mut env, &alloc, (k * 2654435761) % 50_000, &row(k));
        }
        for k in 0..1500u64 {
            t.delete(&mut env, (k * 40_503) % 50_000);
        }
        let errors = t.check_invariants(&mut env);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn empty_tree_is_valid() {
        let (mut env, _alloc, t) = setup(16);
        assert!(t.check_invariants(&mut env).is_empty());
    }

    #[test]
    fn descending_inserts_also_work() {
        let (mut env, alloc, t) = setup(16);
        for k in (0..3000u64).rev() {
            assert!(t.insert(&mut env, &alloc, k, &row(k)));
        }
        assert_eq!(t.count(&mut env), 3000);
        let mut buf = [0u8; 16];
        for k in [0u64, 1, 1499, 2998, 2999] {
            assert!(t.get(&mut env, k, &mut buf), "missing {k}");
        }
    }
}
