//! The recorded execution environment.
//!
//! [`Env`] pairs the simulated memory with a [`Recorder`]: every accessor
//! both performs the real operation on [`SimMemory`] *and* emits the
//! corresponding [`TraceOp`]s. The database engine is written exclusively
//! against `Env`, so the recorded trace is exactly what the engine did.

use crate::pager::Pager;
use crate::SimMemory;
use tls_trace::{latency, Addr, LatchId, OpSink, Pc, ProgramBuilder, TraceOp, TraceProgram};

/// Records the executing transaction into a [`TraceProgram`].
///
/// Two axes of state:
///
/// * **on/off** — the initial database load runs with recording off;
/// * **TLS mode** — with `tls = false` the parallel-region markers are
///   ignored (the SEQUENTIAL trace); with `tls = true` marked loops
///   become parallel regions and each epoch is prefixed with thread-spawn
///   overhead instructions (the TLS software transformation the paper's
///   TLS-SEQ bar measures).
#[derive(Debug, Default)]
pub struct Recorder {
    builder: Option<ProgramBuilder>,
    tls: bool,
    /// Nesting guard: `begin_parallel` inside a parallel region is a
    /// workload bug.
    in_parallel: bool,
    in_epoch: bool,
}

/// Instructions charged per speculative-thread spawn (register setup,
/// thread-management calls) when recording in TLS mode.
pub const SPAWN_OVERHEAD_OPS: usize = 40;

impl Recorder {
    /// A recorder that is off.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Starts recording a program named `name`; `tls` selects TLS mode.
    ///
    /// # Panics
    ///
    /// Panics if already recording.
    pub fn start(&mut self, name: &str, tls: bool) {
        assert!(self.builder.is_none(), "recorder already running");
        self.builder = Some(ProgramBuilder::new(name));
        self.tls = tls;
        self.in_parallel = false;
        self.in_epoch = false;
    }

    /// Whether ops are being recorded.
    pub fn recording(&self) -> bool {
        self.builder.is_some()
    }

    /// Whether the TLS software transformation is active.
    pub fn tls(&self) -> bool {
        self.tls && self.recording()
    }

    /// Finishes and returns the recorded program.
    ///
    /// # Panics
    ///
    /// Panics if not recording or inside an unclosed parallel region.
    pub fn finish(&mut self) -> TraceProgram {
        assert!(!self.in_parallel, "finish inside a parallel region");
        self.builder.take().expect("recorder not running").finish()
    }

    /// Marks the start of a parallelized loop (no-op unless TLS mode).
    pub fn begin_parallel(&mut self) {
        assert!(!self.in_parallel, "nested parallel regions are not supported");
        self.in_parallel = true;
        if self.tls() {
            self.builder.as_mut().expect("recording").begin_parallel();
        }
    }

    /// Marks the start of one loop iteration (an epoch in TLS mode).
    pub fn begin_epoch(&mut self, spawn_pc: Pc) {
        assert!(self.in_parallel && !self.in_epoch, "begin_epoch outside a parallel region");
        self.in_epoch = true;
        if self.tls() {
            let b = self.builder.as_mut().expect("recording");
            b.begin_epoch();
            // Thread-spawn overhead: the software cost of TLS.
            b.int_ops(spawn_pc, SPAWN_OVERHEAD_OPS);
        }
    }

    /// Ends the current iteration.
    pub fn end_epoch(&mut self) {
        assert!(self.in_epoch, "end_epoch without begin_epoch");
        self.in_epoch = false;
        if self.tls() {
            self.builder.as_mut().expect("recording").end_epoch();
        }
    }

    /// Ends the parallelized loop.
    pub fn end_parallel(&mut self) {
        assert!(self.in_parallel && !self.in_epoch, "end_parallel with an open epoch");
        self.in_parallel = false;
        if self.tls() {
            self.builder.as_mut().expect("recording").end_parallel();
        }
    }
}

impl OpSink for Recorder {
    fn emit(&mut self, op: TraceOp) {
        if let Some(b) = self.builder.as_mut() {
            b.emit(op);
        }
    }
}

/// The execution environment: simulated memory + trace recorder.
///
/// The accessors perform the access for real and emit the matching trace
/// op. Loads additionally emit a short dependent-use pattern so the core
/// model sees realistic dependence chains (a pointer-chasing B-tree
/// descent really serializes on its loads).
#[derive(Debug, Default)]
pub struct Env {
    /// The simulated memory image.
    pub mem: SimMemory,
    /// The trace recorder.
    pub rec: Recorder,
    /// The attached buffer pool, if any. `None` (direct mode) emits
    /// zero extra ops, so existing traces stay byte-identical.
    pager: Option<Box<Pager>>,
    /// Every page ever allocated, in allocation order — maintained
    /// host-side from the start so a pager can be attached at any point.
    page_registry: Vec<Addr>,
}

impl Env {
    /// A fresh environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Attaches a buffer pool: registers every allocated page and the
    /// given permanent regions (tree meta blocks), then writes the
    /// fault-exempt bootstrap checkpoint. Subsequent [`Self::pin_page`]
    /// calls emit recorded frame traffic and all durability machinery
    /// engages.
    pub fn attach_pager(&mut self, mut pager: Box<Pager>, permanents: &[(Addr, u64)]) {
        assert!(self.pager.is_none(), "a pager is already attached");
        for addr in &self.page_registry {
            pager.register_page(&self.mem, *addr);
        }
        for (addr, len) in permanents {
            pager.register_permanent(&self.mem, *addr, *len);
        }
        pager.bootstrap_checkpoint();
        self.pager = Some(pager);
    }

    /// Detaches and returns the pager (direct mode resumes).
    pub fn detach_pager(&mut self) -> Option<Box<Pager>> {
        self.pager.take()
    }

    /// Restores a pager previously taken with [`Self::detach_pager`]
    /// without re-registering pages or re-bootstrapping the disk — the
    /// exact inverse of detaching. Used to run read-only host-side
    /// audits (consistency checks, invariant scans) in direct mode
    /// without pinning whole tables through a small pool.
    ///
    /// # Panics
    ///
    /// Panics if a pager is already attached.
    pub fn restore_pager(&mut self, pager: Box<Pager>) {
        assert!(self.pager.is_none(), "a pager is already attached");
        self.pager = Some(pager);
    }

    /// How many pages have been registered for paging (resident or
    /// not). Plans size pools as fractions of this.
    pub fn registered_pages(&self) -> usize {
        self.page_registry.len()
    }

    /// Whether a buffer pool is attached.
    pub fn paged(&self) -> bool {
        self.pager.is_some()
    }

    /// The attached pager, if any.
    pub fn pager(&self) -> Option<&Pager> {
        self.pager.as_deref()
    }

    /// Mutable access to the attached pager (counters, disk, crash
    /// points).
    pub fn pager_mut(&mut self) -> Option<&mut Pager> {
        self.pager.as_deref_mut()
    }

    /// Records a freshly allocated page. Host-side only in direct mode;
    /// with a pager attached the page is registered resident and pinned
    /// for the current mini-transaction.
    pub fn register_page(&mut self, addr: Addr) {
        self.page_registry.push(addr);
        if let Some(mut p) = self.pager.take() {
            p.register_new_page(self, addr);
            self.pager = Some(p);
        }
    }

    /// Pins a page before access. A no-op in direct mode; with a pager
    /// attached this is the recorded frame-directory probe (and, on a
    /// miss, eviction plus read-in).
    pub fn pin_page(&mut self, addr: Addr) {
        if let Some(mut p) = self.pager.take() {
            p.pin(self, addr);
            self.pager = Some(p);
        }
    }

    /// Opens a mini-transaction (no-op in direct mode).
    pub fn mtr_begin(&mut self) {
        if let Some(p) = self.pager.as_deref_mut() {
            p.mtr_begin();
        }
    }

    /// Commits the current mini-transaction, logging every change made
    /// under it (no-op in direct mode).
    pub fn mtr_end(&mut self) {
        if let Some(mut p) = self.pager.take() {
            p.mtr_end(self);
            self.pager = Some(p);
        }
    }

    /// Allocates simulated memory (never recorded — allocation itself is
    /// modeled by the instructions of the caller, e.g. the page
    /// allocator's counter update).
    pub fn alloc(&mut self, size: u64, align: u64) -> Addr {
        self.mem.alloc(size, align)
    }

    /// A recorded u64 load whose value feeds subsequent work.
    pub fn load_u64(&mut self, pc: Pc, addr: Addr) -> u64 {
        self.rec.emit(TraceOp::load(pc, addr, 8));
        self.mem.peek_u64(addr)
    }

    /// A recorded u64 store.
    pub fn store_u64(&mut self, pc: Pc, addr: Addr, v: u64) {
        self.rec.emit(TraceOp::store(pc, addr, 8));
        self.mem.poke_u64(addr, v);
    }

    /// A recorded u32 load.
    pub fn load_u32(&mut self, pc: Pc, addr: Addr) -> u32 {
        self.rec.emit(TraceOp::load(pc, addr, 4));
        self.mem.peek_u32(addr)
    }

    /// A recorded u32 store.
    pub fn store_u32(&mut self, pc: Pc, addr: Addr, v: u32) {
        self.rec.emit(TraceOp::store(pc, addr, 4));
        self.mem.poke_u32(addr, v);
    }

    /// A recorded u16 load.
    pub fn load_u16(&mut self, pc: Pc, addr: Addr) -> u16 {
        self.rec.emit(TraceOp::load(pc, addr, 2));
        self.mem.peek_u16(addr)
    }

    /// A recorded u16 store.
    pub fn store_u16(&mut self, pc: Pc, addr: Addr, v: u16) {
        self.rec.emit(TraceOp::store(pc, addr, 2));
        self.mem.poke_u16(addr, v);
    }

    /// A recorded memory-to-memory copy (`len` bytes, 8 at a time):
    /// load/store pairs plus loop control, like a `memcpy`. Handles
    /// overlapping ranges like `memmove`.
    pub fn copy(&mut self, pc: Pc, dst: Addr, src: Addr, len: u64) {
        let mut off = 0;
        while off < len {
            let chunk = (len - off).min(8) as u8;
            self.rec.emit(TraceOp::load(pc, src.offset(off), chunk));
            self.rec.emit(TraceOp::store(pc, dst.offset(off), chunk).with_dep(1));
            off += chunk as u64;
        }
        self.rec.emit(TraceOp::branch(pc, false));
        let data = self.mem.bytes(src, len as usize).to_vec();
        self.mem.write_bytes(dst, &data);
    }

    /// Recorded read of `len` bytes into a caller buffer.
    pub fn read_into(&mut self, pc: Pc, src: Addr, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let chunk = (buf.len() - off).min(8) as u8;
            self.rec.emit(TraceOp::load(pc, src.offset(off as u64), chunk));
            off += chunk as usize;
        }
        buf.copy_from_slice(self.mem.bytes(src, buf.len()));
    }

    /// Recorded write of a caller buffer to simulated memory.
    pub fn write_from(&mut self, pc: Pc, dst: Addr, buf: &[u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let chunk = (buf.len() - off).min(8) as u8;
            self.rec.emit(TraceOp::store(pc, dst.offset(off as u64), chunk));
            off += chunk as usize;
        }
        self.mem.write_bytes(dst, buf);
    }

    /// Recorded fill of `len` bytes (stores only — used for log payloads,
    /// whose content the simulator never inspects).
    pub fn fill(&mut self, pc: Pc, dst: Addr, len: u64) {
        let mut off = 0;
        while off < len {
            let chunk = (len - off).min(8) as u8;
            self.rec.emit(TraceOp::store(pc, dst.offset(off), chunk));
            off += chunk as u64;
        }
    }

    /// Emits `n` integer ALU ops (computation between memory accesses).
    pub fn alu(&mut self, pc: Pc, n: usize) {
        for _ in 0..n {
            self.rec.emit(TraceOp::int_alu(pc, latency::INT));
        }
    }

    /// Emits a compare-and-branch with the given outcome; the compare
    /// depends on the most recent op (typically the key load).
    pub fn cmp_branch(&mut self, pc: Pc, taken: bool) {
        self.rec.emit(TraceOp::int_alu(pc, latency::INT).with_dep(1));
        self.rec.emit(TraceOp::branch(pc, taken).with_dep(1));
    }

    /// Emits a latch acquire.
    pub fn latch_acquire(&mut self, pc: Pc, latch: LatchId) {
        self.rec.emit(TraceOp::latch_acquire(pc, latch));
    }

    /// Emits a latch release.
    pub fn latch_release(&mut self, pc: Pc, latch: LatchId) {
        self.rec.emit(TraceOp::latch_release(pc, latch));
    }

    /// Emits `n` "DBMS overhead" instruction groups, modeling the code a
    /// production engine runs around each primitive (buffer-pool hashing,
    /// latching internals, comparator calls, cursor maintenance).
    ///
    /// Each group is 8 instructions: a private-scratch load, five
    /// dependent ALU ops and a pair of branches. `scratch` must point at
    /// thread-private memory so the overhead perturbs timing without
    /// creating cross-thread dependences.
    pub fn overhead(&mut self, pc: Pc, scratch: Addr, n: usize) {
        for i in 0..n {
            let a = scratch.offset(((i % 32) * 8) as u64);
            self.rec.emit(TraceOp::load(pc, a, 8));
            self.rec.emit(TraceOp::int_alu(pc, latency::INT).with_dep(1));
            self.rec.emit(TraceOp::int_alu(pc, latency::INT).with_dep(1));
            self.rec.emit(TraceOp::int_alu(pc, latency::INT));
            self.rec.emit(TraceOp::int_alu(pc, latency::INT));
            self.rec.emit(TraceOp::int_alu(pc, latency::INT).with_dep(2));
            self.rec.emit(TraceOp::branch(pc, i % 7 != 0));
            self.rec.emit(TraceOp::branch(pc, true));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc() -> Pc {
        Pc::new(1, 1)
    }

    #[test]
    fn accessors_work_without_recording() {
        let mut env = Env::new();
        let a = env.alloc(16, 8);
        env.store_u64(pc(), a, 99);
        assert_eq!(env.load_u64(pc(), a), 99);
        assert!(!env.rec.recording());
    }

    #[test]
    fn recording_captures_every_access() {
        let mut env = Env::new();
        let a = env.alloc(16, 8);
        env.rec.start("t", false);
        env.store_u64(pc(), a, 7);
        let v = env.load_u64(pc(), a);
        env.alu(pc(), 3);
        let p = env.rec.finish();
        assert_eq!(v, 7);
        assert_eq!(p.total_ops(), 5);
        let s = p.stats();
        assert_eq!(s.epochs, 0);
    }

    #[test]
    fn plain_mode_ignores_parallel_markers() {
        let mut env = Env::new();
        env.rec.start("t", false);
        env.rec.begin_parallel();
        env.rec.begin_epoch(pc());
        env.alu(pc(), 10);
        env.rec.end_epoch();
        env.rec.end_parallel();
        let p = env.rec.finish();
        assert_eq!(p.stats().epochs, 0);
        assert_eq!(p.total_ops(), 10); // no spawn overhead either
    }

    #[test]
    fn tls_mode_creates_epochs_with_spawn_overhead() {
        let mut env = Env::new();
        env.rec.start("t", true);
        env.rec.begin_parallel();
        for _ in 0..3 {
            env.rec.begin_epoch(pc());
            env.alu(pc(), 10);
            env.rec.end_epoch();
        }
        env.rec.end_parallel();
        let p = env.rec.finish();
        let s = p.stats();
        assert_eq!(s.epochs, 3);
        assert_eq!(s.parallel_ops, 3 * (10 + SPAWN_OVERHEAD_OPS));
    }

    #[test]
    fn copy_moves_data_and_emits_pairs() {
        let mut env = Env::new();
        let src = env.alloc(24, 8);
        let dst = env.alloc(24, 8);
        env.mem.write_bytes(src, b"abcdefghijklmnopqrstuvwx");
        env.rec.start("t", false);
        env.copy(pc(), dst, src, 24);
        let p = env.rec.finish();
        assert_eq!(env.mem.bytes(dst, 24), b"abcdefghijklmnopqrstuvwx");
        let loads = p.iter_ops().filter(|o| o.is_load()).count();
        let stores = p.iter_ops().filter(|o| o.is_store()).count();
        assert_eq!((loads, stores), (3, 3));
    }

    #[test]
    fn read_write_buffers_round_trip() {
        let mut env = Env::new();
        let a = env.alloc(10, 8);
        env.rec.start("t", false);
        env.write_from(pc(), a, b"0123456789");
        let mut buf = [0u8; 10];
        env.read_into(pc(), a, &mut buf);
        let _ = env.rec.finish();
        assert_eq!(&buf, b"0123456789");
    }

    #[test]
    fn overhead_touches_only_scratch() {
        let mut env = Env::new();
        let scratch = env.alloc(256, 8);
        env.rec.start("t", false);
        env.overhead(pc(), scratch, 10);
        let p = env.rec.finish();
        assert_eq!(p.total_ops(), 80);
        for op in p.iter_ops() {
            if let Some(a) = op.mem_addr() {
                assert!(a.0 >= scratch.0 && a.0 < scratch.0 + 256);
            }
        }
    }

    #[test]
    #[should_panic(expected = "already running")]
    fn double_start_panics() {
        let mut env = Env::new();
        env.rec.start("a", false);
        env.rec.start("b", false);
    }
}
