//! The write-ahead log.
//!
//! Two layers live here:
//!
//! * The **simulated** log ([`Wal`]/[`LocalLog`]): recorded stores into
//!   the simulated address space whose shared tail pointer is the
//!   textbook cross-thread dependence that makes speculative
//!   parallelization of transactions fail. The TLS-optimized engine
//!   gives each speculative thread a [`LocalLog`] buffer instead (merged
//!   at commit, outside the parallel loop), the very optimization the
//!   paper's tuning methodology discovers first.
//! * The **durable** log ([`DurableWal`]): the LSN-stamped, checksummed
//!   record stream the pager writes ahead of every dirty-page flush.
//!   It models the bytes that survive a crash, so it lives host-side
//!   (like the simulated disk) and is replayed by REDO recovery.

use crate::Env;
use std::fmt;
use tls_trace::{Addr, LatchId, Pc};

const SITE_TAIL_R: u16 = 0;
const SITE_TAIL_W: u16 = 1;
const SITE_PAYLOAD: u16 = 2;

/// A record too large for the log buffer: the append was refused before
/// touching any shared state. Returned (never panicked) so chaos paths
/// that generate oversized records stay diagnosable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalFull {
    /// Bytes the append needed (payload + 8-byte record header).
    pub requested: u64,
    /// Capacity of the log buffer.
    pub capacity: u64,
}

impl fmt::Display for WalFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wal record of {} bytes cannot fit a {}-byte log buffer",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for WalFull {}

/// The shared, chip-wide log.
#[derive(Debug, Clone, Copy)]
pub struct Wal {
    tail_cell: Addr,
    region: Addr,
    capacity: u64,
    module: u16,
    latch: LatchId,
}

impl Wal {
    /// Creates a log with a buffer of `capacity` bytes.
    pub fn new(env: &mut Env, capacity: u64, module: u16, latch: LatchId) -> Self {
        let tail_cell = env.alloc(8, 8);
        env.mem.poke_u64(tail_cell, 0);
        let region = env.alloc(capacity, 64);
        Wal { tail_cell, region, capacity, module, latch }
    }

    /// Appends a record of `payload` bytes at the shared tail. When
    /// `latched` the tail update sits in a latch-protected critical
    /// section (the unoptimized engine).
    ///
    /// A record that cannot fit the buffer at all is refused with
    /// [`WalFull`] before any shared state is touched — the old
    /// behavior wrapped the write position modulo a (possibly
    /// underflowed) capacity and died deep inside [`Env`].
    pub fn append(&self, env: &mut Env, payload: u64, latched: bool) -> Result<(), WalFull> {
        let need = payload + 8;
        if need >= self.capacity {
            return Err(WalFull { requested: need, capacity: self.capacity });
        }
        let pc_r = Pc::new(self.module, SITE_TAIL_R);
        let pc_w = Pc::new(self.module, SITE_TAIL_W);
        let pc_p = Pc::new(self.module, SITE_PAYLOAD);
        if latched {
            env.latch_acquire(pc_r, self.latch);
        }
        let tail = env.load_u64(pc_r, self.tail_cell);
        env.alu(pc_r, 4); // record header assembly
        let at = self.region.offset(tail % (self.capacity - payload - 8));
        env.store_u64(pc_p, at, tail); // record header (LSN)
        env.fill(pc_p, at.offset(8), payload);
        env.store_u64(pc_w, self.tail_cell, tail + payload + 8);
        if latched {
            env.latch_release(pc_r, self.latch);
        }
        Ok(())
    }

    /// Reserves `len` bytes of LSN space: a recorded read-modify-write of
    /// the shared tail *without* payload stores.
    ///
    /// This is how per-thread log buffers commit: the thread claims an
    /// LSN range once, at the end of its work, instead of contending on
    /// the tail for every record. It is the one cross-thread dependence
    /// that per-thread logging cannot remove — and because it sits at the
    /// *end* of each speculative thread, it is exactly the kind of late
    /// dependence that makes all-or-nothing TLS restart entire threads
    /// while sub-threads rewind almost nothing.
    ///
    /// Refuses a reservation larger than the buffer with [`WalFull`].
    pub fn reserve(&self, env: &mut Env, len: u64, latched: bool) -> Result<(), WalFull> {
        if len >= self.capacity {
            return Err(WalFull { requested: len, capacity: self.capacity });
        }
        let pc_r = Pc::new(self.module, SITE_TAIL_R);
        let pc_w = Pc::new(self.module, SITE_TAIL_W);
        if latched {
            env.latch_acquire(pc_r, self.latch);
        }
        let tail = env.load_u64(pc_r, self.tail_cell);
        env.alu(pc_r, 2);
        env.store_u64(pc_w, self.tail_cell, tail + len);
        if latched {
            env.latch_release(pc_r, self.latch);
        }
        Ok(())
    }

    /// Current tail offset (unrecorded, for tests).
    pub fn tail(&self, env: &Env) -> u64 {
        env.mem.peek_u64(self.tail_cell)
    }
}

/// A thread-private log buffer (the optimized engine): appends touch only
/// memory owned by the current speculative thread.
#[derive(Debug)]
pub struct LocalLog {
    region: Addr,
    capacity: u64,
    used: u64,
    module: u16,
}

impl LocalLog {
    /// Allocates a private buffer of `capacity` bytes.
    pub fn new(env: &mut Env, capacity: u64, module: u16) -> Self {
        let region = env.alloc(capacity, 64);
        LocalLog { region, capacity, used: 0, module }
    }

    /// Appends a record of `payload` bytes. The cursor lives in a
    /// register (Rust state), so nothing shared is touched.
    ///
    /// # Panics
    ///
    /// Panics if a single record cannot fit the buffer even when empty
    /// (the wrap below would write past the region).
    pub fn append(&mut self, env: &mut Env, payload: u64) {
        let pc = Pc::new(self.module, SITE_PAYLOAD);
        env.alu(pc, 4);
        let need = payload + 8;
        assert!(
            need <= self.capacity,
            "local log record of {need} bytes cannot fit a {}-byte buffer",
            self.capacity
        );
        if self.used + need > self.capacity {
            self.used = 0; // wrap: older records were already merged
        }
        let at = self.region.offset(self.used);
        env.store_u64(pc, at, self.used);
        env.fill(pc, at.offset(8), payload);
        self.used += need;
    }

    /// Bytes appended since creation (modulo wraps).
    pub fn used(&self) -> u64 {
        self.used
    }
}

// ---------------------------------------------------------------------
// The durable record stream.

/// What a durable WAL record carries. Physiological REDO: images and
/// byte-range deltas are scoped to one registered region (page or meta
/// block); commits delimit mini-transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalPayload {
    /// A full image of the region — always the region's *first* record,
    /// so any corrupt disk copy can be rebuilt from the log alone.
    Image {
        /// Region id (its base address in simulated memory).
        region: u64,
        /// The full region contents at this LSN.
        bytes: Vec<u8>,
    },
    /// Byte ranges that changed since the region's previous record.
    Delta {
        /// Region id (its base address in simulated memory).
        region: u64,
        /// `(offset within region, replacement bytes)`, ascending,
        /// non-overlapping.
        ranges: Vec<(u32, Vec<u8>)>,
    },
    /// A mini-transaction commit: every record since the previous commit
    /// is atomically durable. REDO ignores a trailing run of records
    /// with no commit (a crash mid-mtr).
    Commit {
        /// Mini-transaction sequence number (1-based).
        mtr: u64,
    },
}

impl WalPayload {
    /// The region a record applies to (`None` for commits).
    pub fn region(&self) -> Option<u64> {
        match self {
            WalPayload::Image { region, .. } | WalPayload::Delta { region, .. } => Some(*region),
            WalPayload::Commit { .. } => None,
        }
    }
}

/// One durable, checksummed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number: 1-based record index. Page LSNs and
    /// crash-at-LSN points index this stream.
    pub lsn: u64,
    /// The payload.
    pub payload: WalPayload,
    /// FNV-1a-64 over the canonical encoding of `(lsn, payload)`;
    /// recovery drops any record that fails it (a torn log tail).
    pub crc: u64,
}

impl WalRecord {
    fn checksum(lsn: u64, payload: &WalPayload) -> u64 {
        let mut buf = lsn.to_le_bytes().to_vec();
        match payload {
            WalPayload::Image { region, bytes } => {
                buf.push(1);
                buf.extend_from_slice(&region.to_le_bytes());
                buf.extend_from_slice(bytes);
            }
            WalPayload::Delta { region, ranges } => {
                buf.push(2);
                buf.extend_from_slice(&region.to_le_bytes());
                for (off, bytes) in ranges {
                    buf.extend_from_slice(&off.to_le_bytes());
                    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    buf.extend_from_slice(bytes);
                }
            }
            WalPayload::Commit { mtr } => {
                buf.push(3);
                buf.extend_from_slice(&mtr.to_le_bytes());
            }
        }
        crate::page::fnv1a64(&buf)
    }

    /// True when the stored checksum matches the payload.
    pub fn verify(&self) -> bool {
        self.crc == Self::checksum(self.lsn, &self.payload)
    }
}

/// The durable, host-side WAL: an append-only record stream with strict
/// write-ahead discipline (the pager asserts every disk write is covered
/// by records already in this stream).
#[derive(Debug, Default)]
pub struct DurableWal {
    records: Vec<WalRecord>,
}

impl DurableWal {
    /// An empty log.
    pub fn new() -> Self {
        DurableWal::default()
    }

    /// Appends a record, returning its LSN (1-based).
    pub fn append(&mut self, payload: WalPayload) -> u64 {
        let lsn = self.records.len() as u64 + 1;
        let crc = WalRecord::checksum(lsn, &payload);
        self.records.push(WalRecord { lsn, payload, crc });
        lsn
    }

    /// LSN of the most recent record (0 when empty).
    pub fn last_lsn(&self) -> u64 {
        self.records.len() as u64
    }

    /// All records.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// The durable prefix a crash at LSN `k` leaves behind: every record
    /// with `lsn <= k`. REDO additionally drops a trailing uncommitted
    /// run, so crashing mid-mtr recovers to the previous commit.
    pub fn crash_prefix(&self, k: u64) -> &[WalRecord] {
        &self.records[..(k.min(self.records.len() as u64)) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tls_trace::OpKind;

    #[test]
    fn shared_appends_advance_the_tail() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 1 << 16, 3, LatchId(0));
        w.append(&mut env, 40, false).unwrap();
        w.append(&mut env, 40, false).unwrap();
        assert_eq!(w.tail(&env), 96);
    }

    #[test]
    fn latched_append_brackets_with_latch_ops() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 1 << 16, 3, LatchId(5));
        env.rec.start("t", false);
        w.append(&mut env, 16, true).unwrap();
        let p = env.rec.finish();
        let kinds: Vec<_> = p.iter_ops().map(|o| o.kind()).collect();
        assert!(matches!(kinds[0], OpKind::LatchAcquire(LatchId(5))));
        assert!(matches!(kinds.last().unwrap(), OpKind::LatchRelease(LatchId(5))));
    }

    #[test]
    fn shared_append_reads_and_writes_the_tail_cell() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 1 << 16, 3, LatchId(0));
        env.rec.start("t", false);
        w.append(&mut env, 16, false).unwrap();
        let p = env.rec.finish();
        let tail_addr = w.tail_cell;
        assert!(p.iter_ops().any(|o| o.is_load() && o.mem_addr() == Some(tail_addr)));
        assert!(p.iter_ops().any(|o| o.is_store() && o.mem_addr() == Some(tail_addr)));
    }

    #[test]
    fn reserve_advances_tail_without_payload_stores() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 1 << 16, 3, LatchId(0));
        env.rec.start("t", false);
        w.reserve(&mut env, 128, false).unwrap();
        let p = env.rec.finish();
        assert_eq!(w.tail(&env), 128);
        let stores = p.iter_ops().filter(|o| o.is_store()).count();
        assert_eq!(stores, 1, "only the tail cell is written");
        assert_eq!(p.iter_ops().filter(|o| o.is_load()).count(), 1);
    }

    #[test]
    fn latched_reserve_brackets_with_latch_ops() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 1 << 16, 3, LatchId(4));
        env.rec.start("t", false);
        w.reserve(&mut env, 64, true).unwrap();
        let p = env.rec.finish();
        let kinds: Vec<_> = p.iter_ops().map(|o| o.kind()).collect();
        assert!(matches!(kinds[0], OpKind::LatchAcquire(LatchId(4))));
        assert!(matches!(kinds.last().unwrap(), OpKind::LatchRelease(LatchId(4))));
    }

    #[test]
    fn oversized_append_is_a_typed_error_touching_nothing() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 1 << 10, 3, LatchId(0));
        env.rec.start("t", false);
        let err = w.append(&mut env, 1 << 10, false).unwrap_err();
        assert_eq!(err, WalFull { requested: (1 << 10) + 8, capacity: 1 << 10 });
        assert!(format!("{err}").contains("1032 bytes"));
        // The boundary case: payload + header exactly == capacity is
        // still refused (the ring math needs strictly positive slack).
        assert!(w.append(&mut env, (1 << 10) - 8, false).is_err());
        assert!(w.append(&mut env, (1 << 10) - 9, false).is_ok());
        let p = env.rec.finish();
        // Only the successful append recorded anything.
        assert!(p.iter_ops().any(|o| o.is_store()));
        assert_eq!(w.tail(&env), (1 << 10) - 1, "only the successful append advanced the tail");
    }

    #[test]
    fn oversized_reserve_is_a_typed_error() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 256, 3, LatchId(0));
        assert_eq!(w.reserve(&mut env, 300, false), Err(WalFull { requested: 300, capacity: 256 }));
        assert_eq!(w.tail(&env), 0);
        assert!(w.reserve(&mut env, 255, false).is_ok());
    }

    #[test]
    fn local_log_touches_only_its_region() {
        let mut env = Env::new();
        let mut l = LocalLog::new(&mut env, 4096, 3);
        env.rec.start("t", false);
        l.append(&mut env, 32);
        l.append(&mut env, 32);
        let p = env.rec.finish();
        assert_eq!(l.used(), 80);
        for op in p.iter_ops() {
            if let Some(a) = op.mem_addr() {
                assert!(a.0 >= l.region.0 && a.0 < l.region.0 + 4096);
            }
        }
    }

    #[test]
    fn local_log_wraps_when_full() {
        let mut env = Env::new();
        let mut l = LocalLog::new(&mut env, 100, 3);
        for _ in 0..5 {
            l.append(&mut env, 32);
        }
        assert!(l.used() <= 100);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn local_log_refuses_records_larger_than_the_buffer() {
        let mut env = Env::new();
        let mut l = LocalLog::new(&mut env, 64, 3);
        l.append(&mut env, 64);
    }

    #[test]
    fn durable_records_verify_and_crash_prefix_truncates() {
        let mut wal = DurableWal::new();
        let l1 = wal.append(WalPayload::Image { region: 0x1000, bytes: vec![1, 2, 3] });
        let l2 = wal.append(WalPayload::Delta { region: 0x1000, ranges: vec![(1, vec![9])] });
        let l3 = wal.append(WalPayload::Commit { mtr: 1 });
        assert_eq!((l1, l2, l3), (1, 2, 3));
        assert_eq!(wal.last_lsn(), 3);
        assert!(wal.records().iter().all(WalRecord::verify));
        assert_eq!(wal.crash_prefix(2).len(), 2);
        assert_eq!(wal.crash_prefix(99).len(), 3);

        // A flipped byte fails record verification.
        let mut bad = wal.records()[0].clone();
        if let WalPayload::Image { bytes, .. } = &mut bad.payload {
            bytes[0] ^= 0xFF;
        }
        assert!(!bad.verify());
    }
}
