//! The write-ahead log.
//!
//! In the unoptimized engine every row modification appends to a single
//! log buffer through a shared tail pointer — the textbook cross-thread
//! dependence that makes speculative parallelization of transactions
//! fail. The TLS-optimized engine gives each speculative thread a
//! [`LocalLog`] buffer instead (merged at commit, outside the parallel
//! loop), the very optimization the paper's tuning methodology discovers
//! first.

use crate::Env;
use tls_trace::{Addr, LatchId, Pc};

const SITE_TAIL_R: u16 = 0;
const SITE_TAIL_W: u16 = 1;
const SITE_PAYLOAD: u16 = 2;

/// The shared, chip-wide log.
#[derive(Debug, Clone, Copy)]
pub struct Wal {
    tail_cell: Addr,
    region: Addr,
    capacity: u64,
    module: u16,
    latch: LatchId,
}

impl Wal {
    /// Creates a log with a buffer of `capacity` bytes.
    pub fn new(env: &mut Env, capacity: u64, module: u16, latch: LatchId) -> Self {
        let tail_cell = env.alloc(8, 8);
        env.mem.poke_u64(tail_cell, 0);
        let region = env.alloc(capacity, 64);
        Wal { tail_cell, region, capacity, module, latch }
    }

    /// Appends a record of `payload` bytes at the shared tail. When
    /// `latched` the tail update sits in a latch-protected critical
    /// section (the unoptimized engine).
    pub fn append(&self, env: &mut Env, payload: u64, latched: bool) {
        let pc_r = Pc::new(self.module, SITE_TAIL_R);
        let pc_w = Pc::new(self.module, SITE_TAIL_W);
        let pc_p = Pc::new(self.module, SITE_PAYLOAD);
        if latched {
            env.latch_acquire(pc_r, self.latch);
        }
        let tail = env.load_u64(pc_r, self.tail_cell);
        env.alu(pc_r, 4); // record header assembly
        let at = self.region.offset(tail % (self.capacity - payload - 8));
        env.store_u64(pc_p, at, tail); // record header (LSN)
        env.fill(pc_p, at.offset(8), payload);
        env.store_u64(pc_w, self.tail_cell, tail + payload + 8);
        if latched {
            env.latch_release(pc_r, self.latch);
        }
    }

    /// Reserves `len` bytes of LSN space: a recorded read-modify-write of
    /// the shared tail *without* payload stores.
    ///
    /// This is how per-thread log buffers commit: the thread claims an
    /// LSN range once, at the end of its work, instead of contending on
    /// the tail for every record. It is the one cross-thread dependence
    /// that per-thread logging cannot remove — and because it sits at the
    /// *end* of each speculative thread, it is exactly the kind of late
    /// dependence that makes all-or-nothing TLS restart entire threads
    /// while sub-threads rewind almost nothing.
    pub fn reserve(&self, env: &mut Env, len: u64, latched: bool) {
        let pc_r = Pc::new(self.module, SITE_TAIL_R);
        let pc_w = Pc::new(self.module, SITE_TAIL_W);
        if latched {
            env.latch_acquire(pc_r, self.latch);
        }
        let tail = env.load_u64(pc_r, self.tail_cell);
        env.alu(pc_r, 2);
        env.store_u64(pc_w, self.tail_cell, tail + len);
        if latched {
            env.latch_release(pc_r, self.latch);
        }
    }

    /// Current tail offset (unrecorded, for tests).
    pub fn tail(&self, env: &Env) -> u64 {
        env.mem.peek_u64(self.tail_cell)
    }
}

/// A thread-private log buffer (the optimized engine): appends touch only
/// memory owned by the current speculative thread.
#[derive(Debug)]
pub struct LocalLog {
    region: Addr,
    capacity: u64,
    used: u64,
    module: u16,
}

impl LocalLog {
    /// Allocates a private buffer of `capacity` bytes.
    pub fn new(env: &mut Env, capacity: u64, module: u16) -> Self {
        let region = env.alloc(capacity, 64);
        LocalLog { region, capacity, used: 0, module }
    }

    /// Appends a record of `payload` bytes. The cursor lives in a
    /// register (Rust state), so nothing shared is touched.
    pub fn append(&mut self, env: &mut Env, payload: u64) {
        let pc = Pc::new(self.module, SITE_PAYLOAD);
        env.alu(pc, 4);
        let need = payload + 8;
        if self.used + need > self.capacity {
            self.used = 0; // wrap: older records were already merged
        }
        let at = self.region.offset(self.used);
        env.store_u64(pc, at, self.used);
        env.fill(pc, at.offset(8), payload);
        self.used += need;
    }

    /// Bytes appended since creation (modulo wraps).
    pub fn used(&self) -> u64 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tls_trace::OpKind;

    #[test]
    fn shared_appends_advance_the_tail() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 1 << 16, 3, LatchId(0));
        w.append(&mut env, 40, false);
        w.append(&mut env, 40, false);
        assert_eq!(w.tail(&env), 96);
    }

    #[test]
    fn latched_append_brackets_with_latch_ops() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 1 << 16, 3, LatchId(5));
        env.rec.start("t", false);
        w.append(&mut env, 16, true);
        let p = env.rec.finish();
        let kinds: Vec<_> = p.iter_ops().map(|o| o.kind()).collect();
        assert!(matches!(kinds[0], OpKind::LatchAcquire(LatchId(5))));
        assert!(matches!(kinds.last().unwrap(), OpKind::LatchRelease(LatchId(5))));
    }

    #[test]
    fn shared_append_reads_and_writes_the_tail_cell() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 1 << 16, 3, LatchId(0));
        env.rec.start("t", false);
        w.append(&mut env, 16, false);
        let p = env.rec.finish();
        let tail_addr = w.tail_cell;
        assert!(p.iter_ops().any(|o| o.is_load() && o.mem_addr() == Some(tail_addr)));
        assert!(p.iter_ops().any(|o| o.is_store() && o.mem_addr() == Some(tail_addr)));
    }

    #[test]
    fn reserve_advances_tail_without_payload_stores() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 1 << 16, 3, LatchId(0));
        env.rec.start("t", false);
        w.reserve(&mut env, 128, false);
        let p = env.rec.finish();
        assert_eq!(w.tail(&env), 128);
        let stores = p.iter_ops().filter(|o| o.is_store()).count();
        assert_eq!(stores, 1, "only the tail cell is written");
        assert_eq!(p.iter_ops().filter(|o| o.is_load()).count(), 1);
    }

    #[test]
    fn latched_reserve_brackets_with_latch_ops() {
        let mut env = Env::new();
        let w = Wal::new(&mut env, 1 << 16, 3, LatchId(4));
        env.rec.start("t", false);
        w.reserve(&mut env, 64, true);
        let p = env.rec.finish();
        let kinds: Vec<_> = p.iter_ops().map(|o| o.kind()).collect();
        assert!(matches!(kinds[0], OpKind::LatchAcquire(LatchId(4))));
        assert!(matches!(kinds.last().unwrap(), OpKind::LatchRelease(LatchId(4))));
    }

    #[test]
    fn local_log_touches_only_its_region() {
        let mut env = Env::new();
        let mut l = LocalLog::new(&mut env, 4096, 3);
        env.rec.start("t", false);
        l.append(&mut env, 32);
        l.append(&mut env, 32);
        let p = env.rec.finish();
        assert_eq!(l.used(), 80);
        for op in p.iter_ops() {
            if let Some(a) = op.mem_addr() {
                assert!(a.0 >= l.region.0 && a.0 < l.region.0 + 4096);
            }
        }
    }

    #[test]
    fn local_log_wraps_when_full() {
        let mut env = Env::new();
        let mut l = LocalLog::new(&mut env, 100, 3);
        for _ in 0..5 {
            l.append(&mut env, 32);
        }
        assert!(l.used() <= 100);
    }
}
