//! Fixed-cell pages.
//!
//! Every page is [`PAGE_SIZE`] bytes of simulated memory holding a sorted
//! array of fixed-size cells (`8-byte key ‖ value`). TPC-C rows have fixed
//! widths, so fixed cells keep the engine simple while preserving what
//! matters for the paper: **inserts shift cells and update the shared page
//! header**, making hot pages (e.g. the ORDER LINE leaf that consecutive
//! order lines append to) genuine sources of cross-thread dependences.
//!
//! Header layout (24 bytes):
//!
//! | offset | field |
//! |---|---|
//! | 0 | kind (u16) |
//! | 2 | ncells (u16) |
//! | 4 | cell size (u16) |
//! | 8 | next page address (u64; leaf chain, or leftmost child) |
//! | 16 | prev page address (u64) |

use crate::Env;
use std::fmt;
use tls_trace::{Addr, Pc};

/// Bytes per page.
pub const PAGE_SIZE: u64 = 4096;
/// Bytes of page header before the cell array.
pub const HEADER_SIZE: u64 = 24;

/// What a page stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Key/value cells of a B+-tree leaf.
    Leaf,
    /// Key/child-pointer cells of a B+-tree interior node.
    Internal,
}

impl PageKind {
    fn to_u16(self) -> u16 {
        match self {
            PageKind::Leaf => 1,
            PageKind::Internal => 2,
        }
    }

    fn from_u16(v: u16) -> Result<PageKind, u16> {
        match v {
            1 => Ok(PageKind::Leaf),
            2 => Ok(PageKind::Internal),
            other => Err(other),
        }
    }
}

// ---------------------------------------------------------------------
// The on-disk page envelope.
//
// When the pager writes a page (or any registered region) to the
// simulated disk it wraps the payload in a 16-byte envelope:
//
// | offset | field |
// |---|---|
// | 0 | page LSN (u64 LE) — last WAL record applied to this image |
// | 8 | FNV-1a-64 checksum of `LSN bytes ‖ payload` |
// | 16 | payload (`PAGE_SIZE` bytes for pages) |
//
// The checksum covers the LSN so a write torn *inside the header* is
// caught too: a tear is undetectable only if it reproduces a fully
// consistent `(lsn, payload, checksum)` triple, i.e. the all-old or
// all-new envelope. The in-memory page layout above is unchanged — the
// envelope exists only on the disk side of a flush.

/// Bytes of envelope header preceding the payload on disk.
pub const ENVELOPE_HEADER: usize = 16;

/// FNV-1a-64 — the same checksum the harness snapshot store uses, kept
/// inline so `tls-minidb` needs no extra dependency.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Wraps `payload` in a checksummed envelope stamped with `lsn`.
pub fn envelope_encode(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_HEADER + payload.len());
    out.extend_from_slice(&lsn.to_le_bytes());
    let mut sum = lsn.to_le_bytes().to_vec();
    sum.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(&sum).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why an on-disk envelope failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Shorter than the 16-byte header.
    TooShort {
        /// Bytes actually present.
        len: usize,
    },
    /// The stored checksum does not match the stored LSN + payload — a
    /// torn write, a bit flip, or any other corruption.
    Checksum {
        /// Checksum found in the header.
        stored: u64,
        /// Checksum recomputed over the stored LSN and payload.
        computed: u64,
    },
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::TooShort { len } => {
                write!(f, "page envelope too short: {len} bytes")
            }
            EnvelopeError::Checksum { stored, computed } => {
                write!(
                    f,
                    "page checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// Decodes an envelope, returning `(page LSN, payload)` only if the
/// checksum verifies. Corrupt envelopes are **never** silently served —
/// every caller must handle the error (repair from the WAL or
/// quarantine).
pub fn envelope_decode(bytes: &[u8]) -> Result<(u64, &[u8]), EnvelopeError> {
    if bytes.len() < ENVELOPE_HEADER {
        return Err(EnvelopeError::TooShort { len: bytes.len() });
    }
    let lsn = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
    let stored = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let payload = &bytes[ENVELOPE_HEADER..];
    let mut sum = bytes[..8].to_vec();
    sum.extend_from_slice(payload);
    let computed = fnv1a64(&sum);
    if stored != computed {
        return Err(EnvelopeError::Checksum { stored, computed });
    }
    Ok((lsn, payload))
}

/// A structurally corrupt page: its header does not decode. Surfaced as
/// a typed error so integrity checks can report corruption instead of
/// crashing mid-scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageError {
    /// Base address of the page whose header was invalid.
    pub base: Addr,
    /// The raw kind field found there.
    pub raw_kind: u16,
}

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page {:?}: corrupt page kind {}", self.base, self.raw_kind)
    }
}

impl std::error::Error for PageError {}

// Recorded-access sites within a page's module.
const SITE_HDR_R: u16 = 0;
const SITE_HDR_W: u16 = 1;
const SITE_KEY_PROBE: u16 = 2;
const SITE_CELL_R: u16 = 3;
const SITE_CELL_W: u16 = 4;
const SITE_SHIFT: u16 = 5;
const SITE_LINK: u16 = 6;

/// A handle to one page. Cheap to copy; all state lives in simulated
/// memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Page {
    /// Base address of the page (also its identifier).
    pub base: Addr,
    /// Profiling module id of the owning tree.
    pub module: u16,
}

impl Page {
    /// Formats a fresh page in place.
    pub fn format(env: &mut Env, base: Addr, kind: PageKind, cell_size: u16, module: u16) -> Page {
        let p = Page { base, module };
        let pc = Pc::new(module, SITE_HDR_W);
        env.store_u16(pc, base, kind.to_u16());
        env.store_u16(pc, base.offset(2), 0);
        env.store_u16(pc, base.offset(4), cell_size);
        env.store_u64(pc, base.offset(8), 0);
        env.store_u64(pc, base.offset(16), 0);
        p
    }

    /// Opens an existing page.
    pub fn open(base: Addr, module: u16) -> Page {
        Page { base, module }
    }

    fn pc(&self, site: u16) -> Pc {
        Pc::new(self.module, site)
    }

    /// The page kind (recorded header read), or a [`PageError`] if the
    /// header does not decode to a known kind.
    pub fn kind(&self, env: &mut Env) -> Result<PageKind, PageError> {
        let raw = env.load_u16(self.pc(SITE_HDR_R), self.base);
        PageKind::from_u16(raw).map_err(|raw_kind| PageError { base: self.base, raw_kind })
    }

    /// Number of cells (recorded header read).
    pub fn ncells(&self, env: &mut Env) -> u16 {
        env.load_u16(self.pc(SITE_HDR_R), self.base.offset(2))
    }

    fn set_ncells(&self, env: &mut Env, n: u16) {
        env.store_u16(self.pc(SITE_HDR_W), self.base.offset(2), n);
    }

    /// Bytes per cell (key + value), from the header.
    pub fn cell_size(&self, env: &mut Env) -> u16 {
        env.load_u16(self.pc(SITE_HDR_R), self.base.offset(4))
    }

    /// Next-page link (leaf chain, or the leftmost child of an interior
    /// node).
    pub fn next(&self, env: &mut Env) -> Addr {
        Addr(env.load_u64(self.pc(SITE_LINK), self.base.offset(8)))
    }

    /// Sets the next-page link.
    pub fn set_next(&self, env: &mut Env, next: Addr) {
        env.store_u64(self.pc(SITE_LINK), self.base.offset(8), next.0);
    }

    /// Previous-page link of the leaf chain.
    pub fn prev(&self, env: &mut Env) -> Addr {
        Addr(env.load_u64(self.pc(SITE_LINK), self.base.offset(16)))
    }

    /// Sets the previous-page link.
    pub fn set_prev(&self, env: &mut Env, prev: Addr) {
        env.store_u64(self.pc(SITE_LINK), self.base.offset(16), prev.0);
    }

    /// Maximum cells a page of this cell size holds.
    pub fn capacity(cell_size: u16) -> u16 {
        ((PAGE_SIZE - HEADER_SIZE) / cell_size as u64) as u16
    }

    /// Address of cell `i`.
    pub fn cell_addr(&self, env: &mut Env, i: u16) -> Addr {
        let cs = self.cell_size(env) as u64;
        self.base.offset(HEADER_SIZE + i as u64 * cs)
    }

    /// Address of cell `i`'s value (just past the key).
    pub fn value_addr(&self, env: &mut Env, i: u16) -> Addr {
        self.cell_addr(env, i).offset(8)
    }

    /// Key of cell `i` (recorded load).
    pub fn key_at(&self, env: &mut Env, i: u16) -> u64 {
        let a = self.cell_addr(env, i);
        env.load_u64(self.pc(SITE_CELL_R), a)
    }

    /// Binary search for `key` among the cells, emitting the probe loads
    /// and compare/branch ops of the search loop. `Ok(i)` = exact match,
    /// `Err(i)` = insertion point.
    pub fn find(&self, env: &mut Env, key: u64) -> Result<u16, u16> {
        let n = self.ncells(env);
        let (mut lo, mut hi) = (0u16, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let a = self.cell_addr(env, mid);
            let k = env.load_u64(self.pc(SITE_KEY_PROBE), a);
            env.cmp_branch(self.pc(SITE_KEY_PROBE), k < key);
            if k == key {
                return Ok(mid);
            } else if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Err(lo)
    }

    /// Inserts a cell at position `i`, shifting later cells up (a recorded
    /// memmove) and bumping the header count.
    ///
    /// # Panics
    ///
    /// Panics if the page is full or `value` does not match the cell size.
    pub fn insert_at(&self, env: &mut Env, i: u16, key: u64, value: &[u8]) {
        let cs = self.cell_size(env);
        assert_eq!(value.len() as u16, cs - 8, "value width must match the cell size");
        let n = self.ncells(env);
        assert!(n < Page::capacity(cs), "page overflow");
        assert!(i <= n);
        // Shift cells [i, n) up by one, highest first.
        let mut j = n;
        while j > i {
            let src = self.cell_addr(env, j - 1);
            let dst = self.cell_addr(env, j);
            env.copy(self.pc(SITE_SHIFT), dst, src, cs as u64);
            j -= 1;
        }
        let cell = self.cell_addr(env, i);
        env.store_u64(self.pc(SITE_CELL_W), cell, key);
        env.write_from(self.pc(SITE_CELL_W), cell.offset(8), value);
        self.set_ncells(env, n + 1);
    }

    /// Removes cell `i`, shifting later cells down.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn remove_at(&self, env: &mut Env, i: u16) {
        let cs = self.cell_size(env);
        let n = self.ncells(env);
        assert!(i < n, "remove_at out of bounds");
        for j in i..n - 1 {
            let src = self.cell_addr(env, j + 1);
            let dst = self.cell_addr(env, j);
            env.copy(self.pc(SITE_SHIFT), dst, src, cs as u64);
        }
        self.set_ncells(env, n - 1);
    }

    /// Reads cell `i`'s value into `buf`.
    pub fn read_value(&self, env: &mut Env, i: u16, buf: &mut [u8]) {
        let a = self.value_addr(env, i);
        env.read_into(self.pc(SITE_CELL_R), a, buf);
    }

    /// Overwrites cell `i`'s value.
    pub fn write_value(&self, env: &mut Env, i: u16, buf: &[u8]) {
        let a = self.value_addr(env, i);
        env.write_from(self.pc(SITE_CELL_W), a, buf);
    }

    /// Moves the upper half of this full page into `right` (which must be
    /// freshly formatted with the same cell size) and returns the first
    /// key of `right`.
    pub fn split_into(&self, env: &mut Env, right: Page) -> u64 {
        let cs = self.cell_size(env);
        let n = self.ncells(env);
        let mid = n / 2;
        for j in mid..n {
            let src = self.cell_addr(env, j);
            let dst = right.cell_addr(env, j - mid);
            env.copy(self.pc(SITE_SHIFT), dst, src, cs as u64);
        }
        right.set_ncells(env, n - mid);
        self.set_ncells(env, mid);
        right.key_at(env, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(env: &mut Env, cell: u16) -> Page {
        let base = env.alloc(PAGE_SIZE, PAGE_SIZE);
        Page::format(env, base, PageKind::Leaf, cell, 7)
    }

    #[test]
    fn format_and_header_round_trip() {
        let mut env = Env::new();
        let p = fresh(&mut env, 16);
        assert_eq!(p.kind(&mut env), Ok(PageKind::Leaf));
        assert_eq!(p.ncells(&mut env), 0);
        assert_eq!(p.cell_size(&mut env), 16);
        p.set_next(&mut env, Addr(0xAAA0));
        assert_eq!(p.next(&mut env), Addr(0xAAA0));
    }

    #[test]
    fn corrupt_kind_is_a_typed_error() {
        let mut env = Env::new();
        let p = fresh(&mut env, 16);
        // Clobber the kind field with a value no formatter writes.
        env.store_u16(Pc::new(7, 1), p.base, 0xBEEF);
        let e = p.kind(&mut env).expect_err("corrupt header must not decode");
        assert_eq!(e, PageError { base: p.base, raw_kind: 0xBEEF });
        assert!(format!("{e}").contains("corrupt page kind 48879"));
    }

    #[test]
    fn sorted_insert_and_find() {
        let mut env = Env::new();
        let p = fresh(&mut env, 16);
        for key in [50u64, 10, 30, 20, 40] {
            let at = p.find(&mut env, key).unwrap_err();
            p.insert_at(&mut env, at, key, &key.to_le_bytes());
        }
        assert_eq!(p.ncells(&mut env), 5);
        let keys: Vec<u64> = (0..5).map(|i| p.key_at(&mut env, i)).collect();
        assert_eq!(keys, vec![10, 20, 30, 40, 50]);
        assert_eq!(p.find(&mut env, 30), Ok(2));
        assert_eq!(p.find(&mut env, 35), Err(3));
        assert_eq!(p.find(&mut env, 5), Err(0));
        assert_eq!(p.find(&mut env, 99), Err(5));
    }

    #[test]
    fn values_are_preserved_across_shifts() {
        let mut env = Env::new();
        let p = fresh(&mut env, 16);
        for key in [3u64, 1, 2] {
            let at = p.find(&mut env, key).unwrap_err();
            p.insert_at(&mut env, at, key, &(key * 100).to_le_bytes());
        }
        for (i, key) in [1u64, 2, 3].iter().enumerate() {
            let mut buf = [0u8; 8];
            p.read_value(&mut env, i as u16, &mut buf);
            assert_eq!(u64::from_le_bytes(buf), key * 100);
        }
    }

    #[test]
    fn remove_shifts_down() {
        let mut env = Env::new();
        let p = fresh(&mut env, 16);
        for key in 1u64..=4 {
            p.insert_at(&mut env, (key - 1) as u16, key, &key.to_le_bytes());
        }
        p.remove_at(&mut env, 1); // drop key 2
        assert_eq!(p.ncells(&mut env), 3);
        let keys: Vec<u64> = (0..3).map(|i| p.key_at(&mut env, i)).collect();
        assert_eq!(keys, vec![1, 3, 4]);
    }

    #[test]
    fn split_moves_upper_half() {
        let mut env = Env::new();
        let left = fresh(&mut env, 16);
        for key in 1u64..=10 {
            left.insert_at(&mut env, (key - 1) as u16, key, &key.to_le_bytes());
        }
        let rbase = env.alloc(PAGE_SIZE, PAGE_SIZE);
        let right = Page::format(&mut env, rbase, PageKind::Leaf, 16, 7);
        let sep = left.split_into(&mut env, right);
        assert_eq!(sep, 6);
        assert_eq!(left.ncells(&mut env), 5);
        assert_eq!(right.ncells(&mut env), 5);
        assert_eq!(right.key_at(&mut env, 0), 6);
        assert_eq!(left.key_at(&mut env, 4), 5);
    }

    #[test]
    fn capacity_accounts_for_header() {
        assert_eq!(Page::capacity(16), (4096 - 24) / 16);
        assert!(Page::capacity(96) >= 42);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn overfull_insert_panics() {
        let mut env = Env::new();
        let p = fresh(&mut env, 512);
        let cap = Page::capacity(512);
        let v = vec![0u8; 504];
        for k in 0..=cap as u64 {
            p.insert_at(&mut env, k as u16, k, &v);
        }
    }

    #[test]
    fn envelope_round_trips() {
        let payload = vec![7u8; PAGE_SIZE as usize];
        let env = envelope_encode(42, &payload);
        assert_eq!(env.len(), ENVELOPE_HEADER + PAGE_SIZE as usize);
        let (lsn, body) = envelope_decode(&env).expect("clean envelope decodes");
        assert_eq!(lsn, 42);
        assert_eq!(body, &payload[..]);
    }

    #[test]
    fn envelope_rejects_every_single_bit_flip_in_a_sample() {
        let payload: Vec<u8> = (0..64u32).map(|i| i as u8).collect();
        let env = envelope_encode(9, &payload);
        // Flip one bit per byte across the whole envelope.
        for byte in 0..env.len() {
            let mut bad = env.clone();
            bad[byte] ^= 1 << (byte % 8);
            assert!(
                matches!(envelope_decode(&bad), Err(EnvelopeError::Checksum { .. })),
                "flip in byte {byte} must be caught"
            );
        }
    }

    #[test]
    fn envelope_too_short_is_typed() {
        assert_eq!(envelope_decode(&[0u8; 3]), Err(EnvelopeError::TooShort { len: 3 }));
        let e = envelope_decode(&[]).unwrap_err();
        assert!(format!("{e}").contains("too short"));
    }

    #[test]
    fn recorded_ops_reference_page_memory() {
        let mut env = Env::new();
        env.rec.start("t", false);
        let p = fresh(&mut env, 16);
        p.insert_at(&mut env, 0, 42, &[0u8; 8]);
        let _ = p.find(&mut env, 42);
        let prog = env.rec.finish();
        assert!(prog.total_ops() > 5);
        for op in prog.iter_ops() {
            if let Some(a) = op.mem_addr() {
                assert!(a.0 >= p.base.0 && a.0 < p.base.0 + PAGE_SIZE, "op outside page: {op:?}");
            }
        }
    }
}
