//! Property tests: the B+-tree against a `BTreeMap` reference model, and
//! page-format invariants, under arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tls_minidb::{BTree, Env, PageAlloc};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    Delete(u64),
    ScanFrom(u64, u8),
    MinFrom(u64),
}

fn op() -> impl Strategy<Value = Op> {
    // A small key universe maximizes collisions, splits of hot leaves,
    // and delete-then-reinsert patterns.
    let key = 0u64..400;
    prop_oneof![
        4 => (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key.clone().prop_map(Op::Get),
        2 => key.clone().prop_map(Op::Delete),
        1 => (key.clone(), 1u8..20).prop_map(|(k, n)| Op::ScanFrom(k, n)),
        1 => key.prop_map(Op::MinFrom),
    ]
}

fn value_bytes(v: u64) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&v.to_le_bytes());
    b[8..].copy_from_slice(&(!v).to_le_bytes());
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_btreemap(ops in proptest::collection::vec(op(), 1..600)) {
        let mut env = Env::new();
        let alloc = PageAlloc::new(&mut env, 1);
        let tree = BTree::create(&mut env, &alloc, 16, 2);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let inserted = tree.insert(&mut env, &alloc, k, &value_bytes(v));
                    // Duplicate inserts are rejected and must not clobber
                    // the existing value, so the model only inserts when
                    // the key is absent.
                    let absent = !model.contains_key(&k);
                    prop_assert_eq!(inserted, absent);
                    if absent {
                        model.insert(k, v);
                    }
                }
                Op::Get(k) => {
                    let mut buf = [0u8; 16];
                    let found = tree.get(&mut env, k, &mut buf);
                    match model.get(&k) {
                        Some(&v) => {
                            prop_assert!(found);
                            // First inserted value wins (no upsert).
                            let got = u64::from_le_bytes(buf[..8].try_into().unwrap());
                            prop_assert_eq!(got, v);
                        }
                        None => prop_assert!(!found),
                    }
                }
                Op::Delete(k) => {
                    prop_assert_eq!(tree.delete(&mut env, k), model.remove(&k).is_some());
                }
                Op::ScanFrom(k, n) => {
                    let mut got = Vec::new();
                    tree.scan_from(&mut env, k, |_, key, _| {
                        got.push(key);
                        got.len() < n as usize
                    });
                    let want: Vec<u64> =
                        model.range(k..).take(n as usize).map(|(&k, _)| k).collect();
                    prop_assert_eq!(got, want);
                }
                Op::MinFrom(k) => {
                    let got = tree.min_from(&mut env, k).map(|(key, _)| key);
                    let want = model.range(k..).next().map(|(&k, _)| k);
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(tree.count(&mut env), model.len() as u64);
        prop_assert_eq!(tree.entry_count(&mut env), model.len() as u64);
        let errors = tree.check_invariants(&mut env);
        prop_assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn dense_ascending_then_random_deletes_keep_order(
        n in 50u64..400,
        dels in proptest::collection::vec(0u64..400, 0..200),
    ) {
        let mut env = Env::new();
        let alloc = PageAlloc::new(&mut env, 1);
        let tree = BTree::create(&mut env, &alloc, 16, 2);
        for k in 0..n {
            prop_assert!(tree.insert(&mut env, &alloc, k, &value_bytes(k)));
        }
        let mut model: BTreeMap<u64, u64> = (0..n).map(|k| (k, k)).collect();
        for d in dels {
            prop_assert_eq!(tree.delete(&mut env, d), model.remove(&d).is_some());
        }
        let mut seen = Vec::new();
        tree.scan_from(&mut env, 0, |_, k, _| {
            seen.push(k);
            true
        });
        let want: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(seen, want);
    }
}
