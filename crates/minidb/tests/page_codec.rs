//! On-disk envelope codec robustness.
//!
//! Every page the pager flushes travels inside a checksummed envelope
//! (`[lsn][fnv1a64(lsn ‖ payload)][payload]`). A torn or bit-flipped
//! disk write must **never** decode to anything but the exact old or
//! exact new image — checked exhaustively at every byte boundary and
//! every bit position (mirroring the snapshot-store torn-write suite in
//! `crates/harness/tests/torn_snapshots.rs`).

use proptest::prelude::*;
use tls_minidb::{envelope_decode, envelope_encode, EnvelopeError, ENVELOPE_HEADER};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn envelope_round_trips(lsn in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0usize..600)) {
        let enc = envelope_encode(lsn, &payload);
        prop_assert_eq!(enc.len(), ENVELOPE_HEADER + payload.len());
        let (got_lsn, got_payload) = envelope_decode(&enc).expect("clean envelope decodes");
        prop_assert_eq!(got_lsn, lsn);
        prop_assert_eq!(got_payload.to_vec(), payload);
    }

    #[test]
    fn corrupting_any_single_byte_is_detected(
        lsn in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1usize..400),
        pos in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let mut enc = envelope_encode(lsn, &payload);
        let i = (pos % enc.len() as u64) as usize;
        enc[i] ^= xor;
        prop_assert!(
            envelope_decode(&enc).is_err(),
            "byte {} xor {:#04x} slipped through", i, xor
        );
    }
}

#[test]
fn every_byte_boundary_torn_write_is_detected() {
    // Old and new images differ in every byte (payloads 0x55 vs 0xAA,
    // distinct LSNs), so a torn write — new prefix, old suffix — can
    // only legitimately decode at the two endpoints: fully old or fully
    // new. Every interior cut must fail the checksum.
    let old = envelope_encode(7, &[0x55u8; 512]);
    let new = envelope_encode(9, &[0xAAu8; 512]);
    assert_eq!(old.len(), new.len());
    for cut in 0..=new.len() {
        let torn: Vec<u8> = new[..cut].iter().chain(&old[cut..]).copied().collect();
        match envelope_decode(&torn) {
            Ok((lsn, payload)) if cut == 0 => {
                assert_eq!((lsn, payload), (7, &[0x55u8; 512][..]));
            }
            Ok((lsn, payload)) if cut == new.len() => {
                assert_eq!((lsn, payload), (9, &[0xAAu8; 512][..]));
            }
            Ok((lsn, _)) => panic!("torn write at byte {cut} decoded as lsn {lsn}"),
            Err(_) => assert!(cut != 0 && cut != new.len(), "endpoints must decode"),
        }
    }
}

#[test]
fn every_byte_boundary_truncation_is_detected() {
    let full = envelope_encode(3, &[0x5Au8; 300]);
    for len in 0..full.len() {
        match envelope_decode(&full[..len]) {
            Err(EnvelopeError::TooShort { len: l }) => assert_eq!(l, len),
            Err(_) => assert!(len >= ENVELOPE_HEADER, "short inputs report TooShort"),
            Ok(_) => panic!("a {len}-byte prefix of a {}-byte envelope decoded", full.len()),
        }
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    let enc = envelope_encode(0xDEAD_BEEF, &[0x3Cu8; 256]);
    for byte in 0..enc.len() {
        for bit in 0..8 {
            let mut bad = enc.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                envelope_decode(&bad).is_err(),
                "flip of byte {byte} bit {bit} slipped through"
            );
        }
    }
}
