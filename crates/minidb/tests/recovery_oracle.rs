//! The recovery oracle: after a simulated crash at **every** durable-log
//! LSN, REDO recovery must rebuild logical contents byte-identical to
//! the shadow journal — under torn writes, lost writes and bit flips.
//! (The CI recovery-chaos leg runs the same oracle over a wider
//! seed grid through `cargo run --bin recovery`.)

use tls_core::{DiskFaultClass, DiskFaultPlan, ALL_DISK_FAULT_CLASSES};
use tls_minidb::oracle::{run_indexed_workload, run_workload};
use tls_minidb::{recover, BTree, Env, PageAlloc, Pager};

const FRAMES: usize = 20;
const MTRS: usize = 24;

#[test]
fn clean_run_recovers_at_every_crash_point() {
    let w = run_workload(1, MTRS, FRAMES, DiskFaultPlan::default(), false);
    let c = w.pager().counters();
    assert!(c.evictions > 0, "working set must exceed the pool: {c:?}");
    assert!(c.flushes > 0, "dirty pages must reach disk: {c:?}");
    assert_eq!(c.mtrs, MTRS as u64);
    let points = w.check_all_crash_points().expect("oracle green");
    assert!(points > MTRS as u64, "at least one record per mtr");
}

#[test]
fn every_fault_class_recovers_at_every_crash_point() {
    for (si, seed) in [7u64, 101, 9000].into_iter().enumerate() {
        let classes: &[DiskFaultClass] = match si {
            0 => &[DiskFaultClass::TornWrite],
            1 => &[DiskFaultClass::LostWrite, DiskFaultClass::BitFlip],
            _ => &ALL_DISK_FAULT_CLASSES,
        };
        let plan = DiskFaultPlan::generate(seed, classes, 400, 24);
        assert!(!plan.is_empty());
        let w = run_workload(seed, MTRS, FRAMES, plan, false);
        w.check_all_crash_points()
            .unwrap_or_else(|e| panic!("seed {seed} classes {classes:?}: {e}"));
    }
}

#[test]
fn indexed_workload_recovers_index_contents_at_every_crash_point() {
    // The indexed workload maintains a secondary index over tree 0 in
    // the same mini-transaction as every base insert/delete; the shadow
    // journal models the index too, so every crash-point diff covers
    // recovered index contents byte-for-byte — under the full fault mix.
    let plan = DiskFaultPlan::generate(13, &ALL_DISK_FAULT_CLASSES, 400, 24);
    let w = run_indexed_workload(13, MTRS, FRAMES, plan, false);
    assert_eq!(w.trees().len(), 3, "two base trees plus the index");
    let c = w.pager().counters();
    assert!(c.evictions > 0, "index pages must join the eviction traffic: {c:?}");
    w.check_all_crash_points().expect("indexed oracle green");
}

#[test]
fn corrupt_disk_reads_are_never_silently_served() {
    // Fault every single write: every read-in of a faulted page must be
    // detected (checksum or stale LSN) and repaired, never served raw.
    let plan = DiskFaultPlan::generate(42, &ALL_DISK_FAULT_CLASSES, 64, 64);
    let w = run_workload(42, MTRS, 22, plan, false);
    let c = w.pager().counters();
    let faults = w.pager().disk().faults_injected().len() as u64;
    assert!(faults > 0, "the plan must actually fire");
    assert_eq!(
        c.recovery_replays,
        c.checksum_failures + c.stale_reads,
        "every rejected read must be repaired: {c:?}"
    );
    // Live contents stayed correct throughout (crash at the final LSN
    // recovers to exactly the final shadow state).
    w.check_crash_point(w.last_lsn()).expect("final state intact");
}

#[test]
fn untracked_corruption_is_quarantined_with_a_reason() {
    let mut w = run_workload(5, 4, FRAMES, DiskFaultPlan::default(), false);
    // Corrupt the bootstrap envelope of a region that was never modified
    // after attach: no full-page image exists in the log, so recovery
    // must quarantine it rather than serve garbage.
    let untouched = {
        let wal = w.pager().wal();
        let logged: std::collections::HashSet<u64> =
            wal.records().iter().filter_map(|r| r.payload.region()).collect();
        w.pager()
            .disk()
            .regions()
            .into_iter()
            .find(|r| !logged.contains(r))
            .expect("some page untouched in 4 mtrs")
    };
    let k = w.last_lsn();
    let pager = w.env.pager_mut().expect("paged");
    let mut bad = pager.disk().image_of(untouched).expect("bootstrapped");
    bad[20] ^= 0x10;
    pager.disk_mut().bootstrap(untouched, bad);
    let world = w.pager().crash_point(k);
    assert_eq!(world.quarantined.len(), 1, "{:?}", world.quarantined);
    assert_eq!(world.quarantined[0].region, untouched);
    assert!(world.quarantined[0].reason.contains("no valid disk image"));
    // And the oracle reports it rather than passing silently.
    let err = w.check_crash_point(k).expect_err("quarantine must surface");
    assert!(err.contains("quarantined"), "{err}");
}

#[test]
fn observation_does_not_change_recorded_traces() {
    // Record the same paged pin/miss/evict sequence with the event
    // buffer on and off: the raw op streams must be identical (events
    // are host-side only — zero trace, zero cycle drift).
    let run = |observe: bool| {
        let mut env = Env::new();
        let alloc = PageAlloc::new(&mut env, 1);
        let tree = BTree::create(&mut env, &alloc, 16, 2);
        for k in 0..600u64 {
            tree.insert(&mut env, &alloc, k, &[7u8; 16]);
        }
        let pager = Box::new(Pager::new(&mut env, 4, DiskFaultPlan::default(), observe));
        env.attach_pager(pager, &[tree.meta_region()]);
        env.rec.start("obs-drift", false);
        let mut buf = [0u8; 16];
        // One mtr per key range: pins stay within the 4-frame pool while
        // successive ranges rotate leaves through it, forcing evictions.
        for chunk in 0..6u64 {
            env.mtr_begin();
            for k in (chunk * 100..chunk * 100 + 100).step_by(10) {
                assert!(tree.get(&mut env, k, &mut buf));
            }
            env.mtr_end();
        }
        let program = env.rec.finish();
        let events = env.pager_mut().unwrap().take_events();
        let ops: Vec<_> = program.iter_ops().map(|o| format!("{o:?}")).collect();
        (ops, events, env.pager().unwrap().counters())
    };
    let (ops_on, events_on, counters_on) = run(true);
    let (ops_off, events_off, counters_off) = run(false);
    assert_eq!(ops_on, ops_off, "observation changed the recorded trace");
    assert_eq!(counters_on, counters_off);
    assert!(!events_on.is_empty(), "evictions must have been observed");
    assert!(events_off.is_empty());
}

#[test]
fn paged_and_direct_runs_have_identical_logical_contents() {
    // The pager is a residency layer: it must not change what the
    // engine computes, only how its accesses are recorded. Compare the
    // full logical contents of a paged oracle run against recovery at
    // the final LSN (which equals the shadow replay) — and against a
    // pool large enough to never evict.
    let seed = 77;
    let small = run_workload(seed, MTRS, 22, DiskFaultPlan::default(), false);
    let large = run_workload(seed, MTRS, 4096, DiskFaultPlan::default(), false);
    assert!(small.pager().counters().evictions > 0);
    assert_eq!(large.pager().counters().evictions, 0, "pool holds everything");
    let k_small = small.last_lsn();
    let k_large = large.last_lsn();
    assert_eq!(k_small, k_large, "logging must not depend on pool size");
    small.check_crash_point(k_small).expect("small pool green");
    large.check_crash_point(k_large).expect("large pool green");
}

#[test]
fn recovered_trees_pass_structural_invariants() {
    let w = run_workload(3, MTRS, FRAMES, DiskFaultPlan::default(), false);
    let world = w.check_crash_point(w.last_lsn()).expect("green");
    let mut renv = Env::new();
    renv.mem = world.mem;
    for tree in w.trees() {
        let (meta, _) = tree.meta_region();
        let t = BTree::open_existing(meta, tree.value_size(), tree.module());
        let errors = t.check_invariants(&mut renv);
        assert!(errors.is_empty(), "{errors:?}");
    }
}

#[test]
fn tpcc_runs_paged_under_faults_and_recovers_at_the_final_lsn() {
    use tls_minidb::tpcc::consistency;
    use tls_minidb::{Tpcc, TpccConfig};

    let mut t = Tpcc::new(TpccConfig::test());
    let pages = t.env.registered_pages();
    assert!(pages > 60, "test-scale TPC-C should span many pages, got {pages}");
    // Pool ≈ 60% of the database, every write faulted somewhere in the
    // first 2000: real eviction traffic under disk chaos.
    let plan = DiskFaultPlan::generate(11, &ALL_DISK_FAULT_CLASSES, 2000, 64);
    t.attach_pager(pages * 3 / 5, plan, false);
    for _ in 0..40 {
        let txn = t.next_mix_transaction();
        t.run_one(txn);
    }
    let c = t.pager_counters().expect("paged");
    assert_eq!(c.mtrs, 40);
    assert!(c.evictions > 0, "pool must thrash: {c:?}");
    assert!(c.flushes > 0, "dirty pages must reach disk: {c:?}");
    consistency::check(&mut t).expect("consistent while paged");

    // Crash at the final LSN: every table must recover byte-identical
    // to the live database.
    let pager = t.env.pager().expect("paged");
    let world = pager.crash_point(pager.last_lsn());
    assert!(world.quarantined.is_empty(), "{:?}", world.quarantined);
    assert_eq!(world.durable_mtrs, 40, "every transaction's commit is durable");
    let mut renv = Env::new();
    renv.mem = world.mem;
    let trees = t.tables.all();
    let pager = t.env.detach_pager(); // live scans run direct
    for tree in trees {
        let (meta, _) = tree.meta_region();
        let recovered = BTree::open_existing(meta, tree.value_size(), tree.module());
        let mut live_rows = Vec::new();
        tree.scan_from(&mut t.env, 0, |env, k, addr| {
            live_rows.push((k, env.mem.bytes(addr, tree.value_size() as usize).to_vec()));
            true
        });
        let mut rec_rows = Vec::new();
        recovered.scan_from(&mut renv, 0, |env, k, addr| {
            rec_rows.push((k, env.mem.bytes(addr, tree.value_size() as usize).to_vec()));
            true
        });
        assert_eq!(live_rows, rec_rows, "module {:#x} diverged", tree.module());
    }
    drop(pager);
}

#[test]
fn recover_of_empty_inputs_is_empty() {
    let world = recover(&std::collections::HashMap::new(), &[]);
    assert_eq!(world.durable_mtrs, 0);
    assert!(world.quarantined.is_empty());
    assert_eq!(world.durable_lsn, 0);
    assert_eq!(world.images_applied + world.deltas_applied, 0);
}
