//! Program construction.
//!
//! Two layers:
//!
//! * [`OpSink`] — anything that accepts a stream of [`TraceOp`]s. The
//!   workload substrate (`tls-minidb`) writes against this trait so the
//!   same DB code can feed a [`ProgramBuilder`], a statistics counter, or a
//!   test collector.
//! * [`ProgramBuilder`] — assembles ops into sequential and parallel
//!   regions and produces a [`TraceProgram`].

use crate::{latency, Addr, Epoch, LatchId, Pc, Region, TraceOp, TraceProgram};

/// A consumer of dynamic instructions.
///
/// Only [`OpSink::emit`] is required; the remaining methods are convenience
/// emitters with the instruction mix used throughout the workload code.
pub trait OpSink {
    /// Accepts one dynamic instruction.
    fn emit(&mut self, op: TraceOp);

    /// Emits one single-cycle integer ALU op.
    fn int_alu(&mut self, pc: Pc) {
        self.emit(TraceOp::int_alu(pc, latency::INT));
    }

    /// Emits `n` single-cycle integer ALU ops.
    fn int_ops(&mut self, pc: Pc, n: usize) {
        for _ in 0..n {
            self.int_alu(pc);
        }
    }

    /// Emits a load of `size` bytes.
    fn load(&mut self, pc: Pc, addr: Addr, size: u8) {
        self.emit(TraceOp::load(pc, addr, size));
    }

    /// Emits a store of `size` bytes.
    fn store(&mut self, pc: Pc, addr: Addr, size: u8) {
        self.emit(TraceOp::store(pc, addr, size));
    }

    /// Emits a conditional branch with recorded outcome `taken`.
    fn branch(&mut self, pc: Pc, taken: bool) {
        self.emit(TraceOp::branch(pc, taken));
    }

    /// Emits a latch acquire.
    fn latch_acquire(&mut self, pc: Pc, latch: LatchId) {
        self.emit(TraceOp::latch_acquire(pc, latch));
    }

    /// Emits a latch release.
    fn latch_release(&mut self, pc: Pc, latch: LatchId) {
        self.emit(TraceOp::latch_release(pc, latch));
    }
}

/// Collects emitted ops into a `Vec` — handy in tests.
impl OpSink for Vec<TraceOp> {
    fn emit(&mut self, op: TraceOp) {
        self.push(op);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Sequential,
    Parallel { in_epoch: bool },
}

/// Incrementally builds a [`TraceProgram`].
///
/// The builder is always in one of two modes. In sequential mode (the
/// initial mode) emitted ops append to the current sequential region. After
/// [`begin_parallel`](ProgramBuilder::begin_parallel), ops may only be
/// emitted between [`begin_epoch`](ProgramBuilder::begin_epoch) /
/// [`end_epoch`](ProgramBuilder::end_epoch) pairs; each pair records one
/// speculative thread.
///
/// # Panics
///
/// Methods panic on mode violations (emitting outside an epoch while in
/// parallel mode, unbalanced begin/end, finishing mid-parallel-region):
/// these are programming errors in the workload generator, not runtime
/// conditions.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    regions: Vec<Region>,
    seq: Vec<TraceOp>,
    epochs: Vec<Epoch>,
    cur_epoch: Vec<TraceOp>,
    mode: Mode,
}

impl ProgramBuilder {
    /// A new builder for a program called `name`, starting in sequential
    /// mode.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            regions: Vec::new(),
            seq: Vec::new(),
            epochs: Vec::new(),
            cur_epoch: Vec::new(),
            mode: Mode::Sequential,
        }
    }

    /// Closes the current sequential region and starts a parallel one.
    ///
    /// # Panics
    ///
    /// Panics if already inside a parallel region.
    pub fn begin_parallel(&mut self) {
        assert_eq!(self.mode, Mode::Sequential, "begin_parallel inside a parallel region");
        if !self.seq.is_empty() {
            self.regions.push(Region::Sequential(Epoch::new(std::mem::take(&mut self.seq))));
        }
        self.mode = Mode::Parallel { in_epoch: false };
    }

    /// Starts the next epoch (loop iteration) of the current parallel
    /// region.
    ///
    /// # Panics
    ///
    /// Panics outside a parallel region or if the previous epoch was not
    /// ended.
    pub fn begin_epoch(&mut self) {
        match self.mode {
            Mode::Parallel { in_epoch: false } => self.mode = Mode::Parallel { in_epoch: true },
            Mode::Parallel { in_epoch: true } => panic!("begin_epoch while an epoch is open"),
            Mode::Sequential => panic!("begin_epoch outside a parallel region"),
        }
    }

    /// Ends the current epoch. Empty epochs are recorded too: an iteration
    /// that did no work still occupies a thread context.
    ///
    /// # Panics
    ///
    /// Panics if no epoch is open.
    pub fn end_epoch(&mut self) {
        match self.mode {
            Mode::Parallel { in_epoch: true } => {
                self.epochs.push(Epoch::new(std::mem::take(&mut self.cur_epoch)));
                self.mode = Mode::Parallel { in_epoch: false };
            }
            _ => panic!("end_epoch without begin_epoch"),
        }
    }

    /// Ends the parallel region and returns to sequential mode.
    ///
    /// # Panics
    ///
    /// Panics if not in a parallel region or if an epoch is still open.
    pub fn end_parallel(&mut self) {
        match self.mode {
            Mode::Parallel { in_epoch: false } => {
                self.regions.push(Region::Parallel(std::mem::take(&mut self.epochs)));
                self.mode = Mode::Sequential;
            }
            Mode::Parallel { in_epoch: true } => panic!("end_parallel with an open epoch"),
            Mode::Sequential => panic!("end_parallel outside a parallel region"),
        }
    }

    /// True while inside a parallel region (between `begin_parallel` and
    /// `end_parallel`).
    pub fn in_parallel(&self) -> bool {
        matches!(self.mode, Mode::Parallel { .. })
    }

    /// Finishes the program.
    ///
    /// # Panics
    ///
    /// Panics if a parallel region is still open.
    pub fn finish(mut self) -> TraceProgram {
        assert_eq!(self.mode, Mode::Sequential, "finish inside a parallel region");
        if !self.seq.is_empty() {
            self.regions.push(Region::Sequential(Epoch::new(self.seq)));
        }
        TraceProgram::new(self.name, self.regions)
    }
}

impl OpSink for ProgramBuilder {
    fn emit(&mut self, op: TraceOp) {
        match self.mode {
            Mode::Sequential => self.seq.push(op),
            Mode::Parallel { in_epoch: true } => self.cur_epoch.push(op),
            Mode::Parallel { in_epoch: false } => {
                panic!("emit in a parallel region outside any epoch")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_alternating_regions() {
        let mut b = ProgramBuilder::new("p");
        b.int_ops(Pc::new(0, 0), 2);
        b.begin_parallel();
        for _ in 0..3 {
            b.begin_epoch();
            b.int_alu(Pc::new(0, 1));
            b.end_epoch();
        }
        b.end_parallel();
        b.int_alu(Pc::new(0, 2));
        let p = b.finish();
        assert_eq!(p.regions.len(), 3);
        assert!(matches!(&p.regions[0], Region::Sequential(e) if e.len() == 2));
        assert!(matches!(&p.regions[1], Region::Parallel(es) if es.len() == 3));
        assert!(matches!(&p.regions[2], Region::Sequential(e) if e.len() == 1));
    }

    #[test]
    fn no_empty_leading_sequential_region() {
        let mut b = ProgramBuilder::new("p");
        b.begin_parallel();
        b.begin_epoch();
        b.int_alu(Pc::new(0, 0));
        b.end_epoch();
        b.end_parallel();
        let p = b.finish();
        assert_eq!(p.regions.len(), 1);
    }

    #[test]
    fn empty_epochs_are_kept() {
        let mut b = ProgramBuilder::new("p");
        b.begin_parallel();
        b.begin_epoch();
        b.end_epoch();
        b.begin_epoch();
        b.int_alu(Pc::new(0, 0));
        b.end_epoch();
        b.end_parallel();
        let p = b.finish();
        assert!(matches!(&p.regions[0], Region::Parallel(es) if es.len() == 2));
    }

    #[test]
    #[should_panic(expected = "outside any epoch")]
    fn emit_outside_epoch_panics() {
        let mut b = ProgramBuilder::new("p");
        b.begin_parallel();
        b.int_alu(Pc::new(0, 0));
    }

    #[test]
    #[should_panic(expected = "finish inside a parallel region")]
    fn finish_mid_parallel_panics() {
        let mut b = ProgramBuilder::new("p");
        b.begin_parallel();
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "begin_epoch while an epoch is open")]
    fn nested_epoch_panics() {
        let mut b = ProgramBuilder::new("p");
        b.begin_parallel();
        b.begin_epoch();
        b.begin_epoch();
    }

    #[test]
    fn vec_sink_collects() {
        let mut v: Vec<TraceOp> = Vec::new();
        v.int_ops(Pc::new(1, 1), 4);
        v.branch(Pc::new(1, 2), true);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn in_parallel_tracks_mode() {
        let mut b = ProgramBuilder::new("p");
        assert!(!b.in_parallel());
        b.begin_parallel();
        assert!(b.in_parallel());
        b.end_parallel();
        assert!(!b.in_parallel());
    }
}
