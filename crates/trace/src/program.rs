//! Programs, regions and epochs.

use crate::stats::TraceStats;
use crate::TraceOp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The position of an epoch in the original sequential execution.
///
/// Epoch ids are assigned globally across the whole program (sequential
/// regions count as single-epoch regions), so `EpochId` order *is* logical
/// (commit) order: an epoch may only violate a dependence of a
/// strictly-earlier epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EpochId(pub u32);

impl fmt::Display for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One speculative thread: the dynamic instructions of one iteration of a
/// parallelized loop.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Epoch {
    /// The recorded dynamic instructions, in program order.
    pub ops: Vec<TraceOp>,
}

impl Epoch {
    /// An epoch with the given ops.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        Epoch { ops }
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the epoch records no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A maximal single-mode section of the program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Region {
    /// Code outside any parallelized loop; runs non-speculatively on one
    /// CPU while the others idle (this is where TLS coverage is lost).
    Sequential(Epoch),
    /// A parallelized loop: each epoch is one iteration, in iteration
    /// order.
    Parallel(Vec<Epoch>),
}

impl Region {
    /// Total dynamic instructions in the region.
    pub fn ops(&self) -> usize {
        match self {
            Region::Sequential(e) => e.len(),
            Region::Parallel(es) => es.iter().map(Epoch::len).sum(),
        }
    }

    /// Number of epochs (1 for sequential regions).
    pub fn epochs(&self) -> usize {
        match self {
            Region::Sequential(_) => 1,
            Region::Parallel(es) => es.len(),
        }
    }
}

/// A complete recorded execution: the input to the CMP simulator.
///
/// ```
/// use tls_trace::{ProgramBuilder, OpSink, Pc};
/// let mut b = ProgramBuilder::new("tiny");
/// b.int_ops(Pc::new(0, 0), 3);
/// let p = b.finish();
/// assert_eq!(p.name, "tiny");
/// assert_eq!(p.total_ops(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceProgram {
    /// Human-readable benchmark name (e.g. `"new_order"`).
    pub name: String,
    /// The regions, in execution order.
    pub regions: Vec<Region>,
}

impl TraceProgram {
    /// A program with the given name and regions. Empty regions are kept;
    /// they simply contribute nothing.
    pub fn new(name: impl Into<String>, regions: Vec<Region>) -> Self {
        TraceProgram { name: name.into(), regions }
    }

    /// Total dynamic instructions across all regions.
    pub fn total_ops(&self) -> usize {
        self.regions.iter().map(Region::ops).sum()
    }

    /// Computes the Table-2 style static statistics of this program.
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }

    /// Counts the parallel epochs attributed to `module` — epochs whose
    /// first op's PC carries that module — and their total dynamic
    /// instructions. The simulator uses this with
    /// [`SCAN_LOOP_MODULE`](crate::SCAN_LOOP_MODULE) to report scan-loop
    /// epoch accounting separately from the rest of the program.
    pub fn epochs_of_module(&self, module: u16) -> (u64, u64) {
        let mut epochs = 0u64;
        let mut ops = 0u64;
        for r in &self.regions {
            if let Region::Parallel(es) = r {
                for e in es {
                    if e.ops.first().is_some_and(|o| o.pc().module() == module) {
                        epochs += 1;
                        ops += e.len() as u64;
                    }
                }
            }
        }
        (epochs, ops)
    }

    /// A borrowed [`ProgramView`](crate::ProgramView) of this program —
    /// the form the simulator consumes, shared with the harness store's
    /// memory-mapped traces.
    pub fn view(&self) -> crate::ProgramView<'_> {
        crate::ProgramView {
            name: &self.name,
            regions: self
                .regions
                .iter()
                .map(|r| match r {
                    Region::Sequential(e) => crate::RegionView::Sequential(e.ops.as_slice()),
                    Region::Parallel(es) => {
                        crate::RegionView::Parallel(es.iter().map(|e| e.ops.as_slice()).collect())
                    }
                })
                .collect(),
        }
    }

    /// Iterates over all ops in sequential execution order (useful for
    /// building reference memory images and for tests).
    pub fn iter_ops(&self) -> impl Iterator<Item = &TraceOp> + '_ {
        self.regions
            .iter()
            .flat_map(|r| match r {
                Region::Sequential(e) => std::slice::from_ref(e).iter(),
                Region::Parallel(es) => es.as_slice().iter(),
            })
            .flat_map(|e| e.ops.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, Pc};

    fn ops(n: usize) -> Vec<TraceOp> {
        (0..n).map(|i| TraceOp::load(Pc::new(0, i as u16), Addr(i as u64 * 8), 8)).collect()
    }

    #[test]
    fn region_counts() {
        let seq = Region::Sequential(Epoch::new(ops(5)));
        assert_eq!(seq.ops(), 5);
        assert_eq!(seq.epochs(), 1);
        let par = Region::Parallel(vec![Epoch::new(ops(3)), Epoch::new(ops(4))]);
        assert_eq!(par.ops(), 7);
        assert_eq!(par.epochs(), 2);
    }

    #[test]
    fn program_totals_and_iter() {
        let p = TraceProgram::new(
            "t",
            vec![
                Region::Sequential(Epoch::new(ops(2))),
                Region::Parallel(vec![Epoch::new(ops(3)), Epoch::new(ops(1))]),
            ],
        );
        assert_eq!(p.total_ops(), 6);
        assert_eq!(p.iter_ops().count(), 6);
    }

    #[test]
    fn epoch_id_orders_by_position() {
        assert!(EpochId(3) < EpochId(10));
        assert_eq!(format!("{}", EpochId(4)), "e4");
    }

    #[test]
    fn empty_epoch() {
        let e = Epoch::default();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}
