//! Dynamic-instruction representation.
//!
//! A [`TraceOp`] is stored as a 16-byte packed record so that multi-million
//! instruction traces (the paper's threads run up to ~490k dynamic
//! instructions each) stay cache- and memory-friendly. Construction goes
//! through typed constructors and inspection through the [`OpKind`] view
//! enum, so the packing is invisible to users.

use serde::{Deserialize, Serialize};
use std::fmt;
use zerocopy::{FromBytes, Immutable, IntoBytes, KnownLayout};

/// A synthetic program counter.
///
/// The workload generator is ordinary Rust code, not a MIPS binary, so PCs
/// are synthesized from a *(module, site)* pair: a stable identifier of the
/// static emission site. The paper's hardware dependence profiler reports
/// load/store PC pairs; these synthetic PCs play exactly that role and map
/// back to named source locations via the workload's site tables.
///
/// ```
/// use tls_trace::Pc;
/// let pc = Pc::new(3, 7);
/// assert_eq!(pc.module(), 3);
/// assert_eq!(pc.site(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pc(pub u32);

impl Pc {
    /// Builds a PC from a module id (high 16 bits) and a site id within the
    /// module (low 16 bits).
    pub const fn new(module: u16, site: u16) -> Self {
        Pc(((module as u32) << 16) | site as u32)
    }

    /// The module id this PC belongs to.
    pub const fn module(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The site id within the module.
    pub const fn site(self) -> u16 {
        self.0 as u16
    }
}

/// The module id reserved for declarative scan loops: the harness
/// workload compiler stamps every op of a parallelized range-scan
/// iteration with this module, and the simulator attributes epochs whose
/// first op carries it to the report's scan-epoch accounting
/// (`scan_epochs` / `scan_epoch_ops`). Chosen above the MiniDB table and
/// transaction module ranges.
pub const SCAN_LOOP_MODULE: u16 = 0x7C;

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:04x}:{:04x}", self.module(), self.site())
    }
}

/// A byte address in the simulated flat address space.
///
/// The workload substrate allocates all of its data structures inside a
/// simulated memory image, so addresses are meaningful across the whole
/// system: two epochs touching the same B-tree page header really do touch
/// the same [`Addr`] range, which is what drives dependence violations.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u64);

impl Addr {
    /// Byte offset addition. Panics on overflow in debug builds, like `+`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }

    /// The containing aligned block of `1 << shift` bytes (e.g. a cache
    /// line address for `shift = 5` with 32-byte lines).
    #[must_use]
    pub fn align_down(self, shift: u32) -> Self {
        Addr(self.0 >> shift << shift)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Identifies one latch (short-term lock) in the workload.
///
/// Latches model *escaped speculation*: operations a speculative thread
/// performs non-speculatively against shared DBMS structures. A speculative
/// thread that blocks on a held latch accrues latch-stall time — one of the
/// execution-time categories in Figure 5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LatchId(pub u16);

/// Default instruction latencies (Table 1 of the paper).
///
/// The scanned table in the paper dropped some digits; the values below
/// restore them from the R10000-derived pipeline the paper describes and
/// are recorded as a substitution in `DESIGN.md`.
pub mod latency {
    /// "All other integer": 1 cycle.
    pub const INT: u8 = 1;
    /// Integer multiply: 12 cycles.
    pub const INT_MUL: u8 = 12;
    /// Integer divide: 76 cycles.
    pub const INT_DIV: u8 = 76;
    /// "All other FP": 2 cycles.
    pub const FP: u8 = 2;
    /// FP divide: 15 cycles.
    pub const FP_DIV: u8 = 15;
    /// FP square root: 20 cycles.
    pub const FP_SQRT: u8 = 20;
}

/// The decoded view of a [`TraceOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// An integer ALU operation with the given execution latency.
    IntAlu {
        /// Execution latency in cycles (see [`latency`]).
        latency: u8,
    },
    /// A floating-point operation with the given execution latency.
    FpAlu {
        /// Execution latency in cycles (see [`latency`]).
        latency: u8,
    },
    /// A load of `size` bytes from `addr`.
    Load {
        /// Byte address of the access.
        addr: Addr,
        /// Access size in bytes (1, 2, 4 or 8).
        size: u8,
    },
    /// A store of `size` bytes to `addr`.
    Store {
        /// Byte address of the access.
        addr: Addr,
        /// Access size in bytes (1, 2, 4 or 8).
        size: u8,
    },
    /// A conditional branch and its actual outcome.
    Branch {
        /// Whether the branch was taken in the recorded execution.
        taken: bool,
    },
    /// Acquire a latch (escaped, non-speculative synchronization).
    LatchAcquire(LatchId),
    /// Release a latch previously acquired by the same thread.
    LatchRelease(LatchId),
}

const CLASS_INT: u8 = 0;
const CLASS_FP: u8 = 1;
const CLASS_LOAD: u8 = 2;
const CLASS_STORE: u8 = 3;
const CLASS_BRANCH: u8 = 4;
const CLASS_LATCH_ACQ: u8 = 5;
const CLASS_LATCH_REL: u8 = 6;

/// One dynamic instruction of a recorded execution.
///
/// Stored packed (16 bytes); use the constructors ([`TraceOp::int_alu`],
/// [`TraceOp::load`], …) and [`TraceOp::kind`] to interact with it.
///
/// Each op optionally records a *dependence distance*: how many dynamic
/// instructions earlier its producer ran. The core timing model uses this to
/// keep issue from being embarrassingly parallel; distance 0 means "no
/// modeled register dependence".
///
/// The struct is `#[repr(C)]` with all-integer fields in descending
/// alignment order after `pc`, so its in-memory layout on a little-endian
/// target is byte-for-byte the canonical wire record of
/// [`TraceOp::to_raw`] (`pc:4 | class:1 | arg:1 | dep:2 | addr:8`, no
/// padding). The harness trace store exploits this to serve ops straight
/// out of memory-mapped snapshot files via the zerocopy casts — see the
/// layout assertions below, which pin size, alignment and every field
/// offset at compile time.
#[derive(
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    Serialize,
    Deserialize,
    FromBytes,
    IntoBytes,
    Immutable,
    KnownLayout,
)]
#[repr(C)]
pub struct TraceOp {
    pc: u32,
    class: u8,
    /// latency (ALU), size (mem), taken flag (branch)
    arg: u8,
    dep: u16,
    /// address (mem) or latch id (latch ops); unused otherwise
    addr: u64,
}

// The zerocopy read path is only sound if the compiler lays `TraceOp`
// out exactly as the 16-byte wire record; `repr(C)` guarantees field
// order, and these assertions pin the absence of padding.
const _: () = {
    assert!(std::mem::size_of::<TraceOp>() == 16);
    assert!(std::mem::align_of::<TraceOp>() == 8);
    assert!(std::mem::offset_of!(TraceOp, pc) == 0);
    assert!(std::mem::offset_of!(TraceOp, class) == 4);
    assert!(std::mem::offset_of!(TraceOp, arg) == 5);
    assert!(std::mem::offset_of!(TraceOp, dep) == 6);
    assert!(std::mem::offset_of!(TraceOp, addr) == 8);
};

impl TraceOp {
    /// An integer ALU op. `lat` of 0 is rounded up to 1.
    pub fn int_alu(pc: Pc, lat: u8) -> Self {
        TraceOp { pc: pc.0, class: CLASS_INT, arg: lat.max(1), dep: 0, addr: 0 }
    }

    /// A floating-point op. `lat` of 0 is rounded up to 1.
    pub fn fp_alu(pc: Pc, lat: u8) -> Self {
        TraceOp { pc: pc.0, class: CLASS_FP, arg: lat.max(1), dep: 0, addr: 0 }
    }

    /// A load of `size` bytes (1–8) at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn load(pc: Pc, addr: Addr, size: u8) -> Self {
        assert!((1..=8).contains(&size), "load size must be 1..=8, got {size}");
        TraceOp { pc: pc.0, class: CLASS_LOAD, arg: size, dep: 0, addr: addr.0 }
    }

    /// A store of `size` bytes (1–8) at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn store(pc: Pc, addr: Addr, size: u8) -> Self {
        assert!((1..=8).contains(&size), "store size must be 1..=8, got {size}");
        TraceOp { pc: pc.0, class: CLASS_STORE, arg: size, dep: 0, addr: addr.0 }
    }

    /// A conditional branch with recorded outcome `taken`.
    pub fn branch(pc: Pc, taken: bool) -> Self {
        TraceOp { pc: pc.0, class: CLASS_BRANCH, arg: taken as u8, dep: 0, addr: 0 }
    }

    /// A latch acquire.
    pub fn latch_acquire(pc: Pc, latch: LatchId) -> Self {
        TraceOp { pc: pc.0, class: CLASS_LATCH_ACQ, arg: 0, dep: 0, addr: latch.0 as u64 }
    }

    /// A latch release.
    pub fn latch_release(pc: Pc, latch: LatchId) -> Self {
        TraceOp { pc: pc.0, class: CLASS_LATCH_REL, arg: 0, dep: 0, addr: latch.0 as u64 }
    }

    /// Sets the dependence distance (dynamic instructions back to the
    /// producer); returns `self` for chaining. Distance saturates at
    /// `u16::MAX`.
    #[must_use]
    pub fn with_dep(mut self, distance: u16) -> Self {
        self.dep = distance;
        self
    }

    /// The synthetic program counter of this op.
    pub fn pc(&self) -> Pc {
        Pc(self.pc)
    }

    /// The dependence distance; 0 means no modeled dependence.
    pub fn dep(&self) -> u16 {
        self.dep
    }

    /// Decodes the packed representation.
    pub fn kind(&self) -> OpKind {
        match self.class {
            CLASS_INT => OpKind::IntAlu { latency: self.arg },
            CLASS_FP => OpKind::FpAlu { latency: self.arg },
            CLASS_LOAD => OpKind::Load { addr: Addr(self.addr), size: self.arg },
            CLASS_STORE => OpKind::Store { addr: Addr(self.addr), size: self.arg },
            CLASS_BRANCH => OpKind::Branch { taken: self.arg != 0 },
            CLASS_LATCH_ACQ => OpKind::LatchAcquire(LatchId(self.addr as u16)),
            CLASS_LATCH_REL => OpKind::LatchRelease(LatchId(self.addr as u16)),
            other => unreachable!("corrupt op class {other}"),
        }
    }

    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        self.class == CLASS_LOAD || self.class == CLASS_STORE
    }

    /// True for loads.
    pub fn is_load(&self) -> bool {
        self.class == CLASS_LOAD
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        self.class == CLASS_STORE
    }

    /// The memory address, if this is a load or store.
    pub fn mem_addr(&self) -> Option<Addr> {
        self.is_mem().then_some(Addr(self.addr))
    }

    /// Encodes the op as its canonical 16-byte little-endian record
    /// (`pc:4 | class:1 | arg:1 | dep:2 | addr:8`) — the wire format of
    /// the harness trace-snapshot store. [`TraceOp::from_raw`] inverts it.
    pub fn to_raw(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&self.pc.to_le_bytes());
        out[4] = self.class;
        out[5] = self.arg;
        out[6..8].copy_from_slice(&self.dep.to_le_bytes());
        out[8..16].copy_from_slice(&self.addr.to_le_bytes());
        out
    }

    /// Decodes a 16-byte record produced by [`TraceOp::to_raw`],
    /// validating every field so corrupt bytes are rejected instead of
    /// producing an op that later trips `unreachable!` in [`TraceOp::kind`].
    pub fn from_raw(raw: [u8; 16]) -> Result<Self, RawOpError> {
        let op = TraceOp {
            pc: u32::from_le_bytes(raw[0..4].try_into().expect("4-byte slice")),
            class: raw[4],
            arg: raw[5],
            dep: u16::from_le_bytes(raw[6..8].try_into().expect("2-byte slice")),
            addr: u64::from_le_bytes(raw[8..16].try_into().expect("8-byte slice")),
        };
        op.validate()?;
        Ok(op)
    }

    /// Checks the semantic field invariants [`TraceOp::from_raw`]
    /// enforces, for ops obtained by reinterpreting raw memory (the
    /// zerocopy mmap path) rather than by field-wise decoding. An op
    /// that passes is safe to hand to [`TraceOp::kind`].
    pub fn validate(&self) -> Result<(), RawOpError> {
        match self.class {
            CLASS_INT | CLASS_FP => {
                if self.arg == 0 {
                    return Err(RawOpError::ZeroLatency);
                }
                if self.addr != 0 {
                    return Err(RawOpError::NonZeroPadding);
                }
            }
            CLASS_LOAD | CLASS_STORE => {
                if !(1..=8).contains(&self.arg) {
                    return Err(RawOpError::BadMemSize(self.arg));
                }
            }
            CLASS_BRANCH => {
                if self.arg > 1 {
                    return Err(RawOpError::BadBranchFlag(self.arg));
                }
                if self.addr != 0 {
                    return Err(RawOpError::NonZeroPadding);
                }
            }
            CLASS_LATCH_ACQ | CLASS_LATCH_REL => {
                if self.arg != 0 {
                    return Err(RawOpError::NonZeroPadding);
                }
                if self.addr > u16::MAX as u64 {
                    return Err(RawOpError::BadLatchId(self.addr));
                }
            }
            other => return Err(RawOpError::BadClass(other)),
        }
        Ok(())
    }
}

/// Why a 16-byte record was rejected by [`TraceOp::from_raw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawOpError {
    /// The class byte names no op class.
    BadClass(u8),
    /// An ALU op with latency 0 (constructors round up to 1).
    ZeroLatency,
    /// A load/store size outside 1..=8.
    BadMemSize(u8),
    /// A branch taken-flag other than 0/1.
    BadBranchFlag(u8),
    /// A latch id outside the `u16` range.
    BadLatchId(u64),
    /// A field that must be zero for this class was not.
    NonZeroPadding,
}

impl fmt::Display for RawOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawOpError::BadClass(c) => write!(f, "unknown op class {c}"),
            RawOpError::ZeroLatency => write!(f, "ALU op with zero latency"),
            RawOpError::BadMemSize(s) => write!(f, "memory access size {s} outside 1..=8"),
            RawOpError::BadBranchFlag(b) => write!(f, "branch taken flag {b} outside 0..=1"),
            RawOpError::BadLatchId(id) => write!(f, "latch id {id} exceeds u16"),
            RawOpError::NonZeroPadding => write!(f, "padding field is non-zero"),
        }
    }
}

impl std::error::Error for RawOpError {}

impl fmt::Debug for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?}", self.pc(), self.kind())?;
        if self.dep != 0 {
            write!(f, " dep-{}", self.dep)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_is_16_bytes() {
        assert_eq!(std::mem::size_of::<TraceOp>(), 16);
    }

    #[test]
    fn pc_round_trips_module_and_site() {
        let pc = Pc::new(0xBEEF, 0x1234);
        assert_eq!(pc.module(), 0xBEEF);
        assert_eq!(pc.site(), 0x1234);
        assert_eq!(format!("{pc}"), "pc:beef:1234");
    }

    #[test]
    fn addr_alignment() {
        assert_eq!(Addr(0x1234).align_down(5), Addr(0x1220));
        assert_eq!(Addr(0x1220).align_down(5), Addr(0x1220));
        assert_eq!(Addr(0x1234).offset(4), Addr(0x1238));
    }

    #[test]
    fn kinds_round_trip() {
        let pc = Pc::new(1, 2);
        let cases = [
            TraceOp::int_alu(pc, 12),
            TraceOp::fp_alu(pc, 15),
            TraceOp::load(pc, Addr(0xABCD), 8),
            TraceOp::store(pc, Addr(0xABCD), 4),
            TraceOp::branch(pc, true),
            TraceOp::branch(pc, false),
            TraceOp::latch_acquire(pc, LatchId(7)),
            TraceOp::latch_release(pc, LatchId(7)),
        ];
        let kinds: Vec<OpKind> = cases.iter().map(TraceOp::kind).collect();
        assert_eq!(kinds[0], OpKind::IntAlu { latency: 12 });
        assert_eq!(kinds[1], OpKind::FpAlu { latency: 15 });
        assert_eq!(kinds[2], OpKind::Load { addr: Addr(0xABCD), size: 8 });
        assert_eq!(kinds[3], OpKind::Store { addr: Addr(0xABCD), size: 4 });
        assert_eq!(kinds[4], OpKind::Branch { taken: true });
        assert_eq!(kinds[5], OpKind::Branch { taken: false });
        assert_eq!(kinds[6], OpKind::LatchAcquire(LatchId(7)));
        assert_eq!(kinds[7], OpKind::LatchRelease(LatchId(7)));
    }

    #[test]
    fn zero_latency_rounds_up() {
        assert_eq!(TraceOp::int_alu(Pc::new(0, 0), 0).kind(), OpKind::IntAlu { latency: 1 });
    }

    #[test]
    #[should_panic(expected = "load size")]
    fn oversized_load_panics() {
        let _ = TraceOp::load(Pc::new(0, 0), Addr(0), 16);
    }

    #[test]
    fn mem_predicates() {
        let pc = Pc::new(0, 0);
        let ld = TraceOp::load(pc, Addr(8), 8);
        let st = TraceOp::store(pc, Addr(8), 8);
        let alu = TraceOp::int_alu(pc, 1);
        assert!(ld.is_mem() && ld.is_load() && !ld.is_store());
        assert!(st.is_mem() && st.is_store() && !st.is_load());
        assert!(!alu.is_mem());
        assert_eq!(ld.mem_addr(), Some(Addr(8)));
        assert_eq!(alu.mem_addr(), None);
    }

    #[test]
    fn raw_round_trips_every_kind() {
        let pc = Pc::new(7, 9);
        let cases = [
            TraceOp::int_alu(pc, 12).with_dep(3),
            TraceOp::fp_alu(pc, 15),
            TraceOp::load(pc, Addr(0xDEAD_BEEF), 8).with_dep(42),
            TraceOp::store(pc, Addr(0xABCD), 4),
            TraceOp::branch(pc, true),
            TraceOp::branch(pc, false),
            TraceOp::latch_acquire(pc, LatchId(7)),
            TraceOp::latch_release(pc, LatchId(u16::MAX)),
        ];
        for op in cases {
            assert_eq!(TraceOp::from_raw(op.to_raw()), Ok(op));
        }
    }

    #[test]
    fn raw_rejects_corrupt_records() {
        let bad_class = {
            let mut r = TraceOp::int_alu(Pc::new(0, 0), 1).to_raw();
            r[4] = 9;
            r
        };
        assert_eq!(TraceOp::from_raw(bad_class), Err(RawOpError::BadClass(9)));
        let bad_size = {
            let mut r = TraceOp::load(Pc::new(0, 0), Addr(8), 8).to_raw();
            r[5] = 16;
            r
        };
        assert_eq!(TraceOp::from_raw(bad_size), Err(RawOpError::BadMemSize(16)));
        let bad_flag = {
            let mut r = TraceOp::branch(Pc::new(0, 0), true).to_raw();
            r[5] = 2;
            r
        };
        assert_eq!(TraceOp::from_raw(bad_flag), Err(RawOpError::BadBranchFlag(2)));
        let bad_latch = {
            let mut r = TraceOp::latch_acquire(Pc::new(0, 0), LatchId(1)).to_raw();
            r[12] = 1; // latch id bit above u16
            r
        };
        assert_eq!(TraceOp::from_raw(bad_latch), Err(RawOpError::BadLatchId(1 | (1 << 32))));
        let zero_lat = {
            let mut r = TraceOp::int_alu(Pc::new(0, 0), 1).to_raw();
            r[5] = 0;
            r
        };
        assert_eq!(TraceOp::from_raw(zero_lat), Err(RawOpError::ZeroLatency));
    }

    #[test]
    fn dep_distance_is_preserved() {
        let op = TraceOp::int_alu(Pc::new(0, 0), 1).with_dep(42);
        assert_eq!(op.dep(), 42);
        assert!(format!("{op:?}").contains("dep-42"));
    }
}
