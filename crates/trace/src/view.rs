//! Borrowed, zero-copy views over trace programs.
//!
//! The CMP simulator is a pure consumer of a program's structure: it
//! never mutates ops and only ever walks epochs as contiguous op runs.
//! [`ProgramView`] captures exactly that access pattern — a name plus
//! per-region `&[TraceOp]` slices — so the same simulator entry point can
//! run either an owned [`TraceProgram`] (via [`TraceProgram::view`]) or
//! ops served directly out of a memory-mapped snapshot file (the harness
//! store's `TraceView`), without the mmap path ever materializing the
//! multi-megabyte `Vec<TraceOp>` hierarchy.
//!
//! A view's structural skeleton (the region/epoch vectors) is owned and
//! tiny — a handful of pointers per epoch — while the op payloads, which
//! dominate memory, stay borrowed.

use crate::stats::TraceStats;
use crate::{Epoch, Region, TraceOp, TraceProgram};

/// One region of a [`ProgramView`]: the borrowed counterpart of
/// [`Region`].
#[derive(Debug, Clone)]
pub enum RegionView<'a> {
    /// A sequential region's single epoch.
    Sequential(&'a [TraceOp]),
    /// A parallel region: one op run per epoch, in iteration order.
    Parallel(Vec<&'a [TraceOp]>),
}

impl<'a> RegionView<'a> {
    /// Total dynamic instructions in the region.
    pub fn ops(&self) -> usize {
        match self {
            RegionView::Sequential(e) => e.len(),
            RegionView::Parallel(es) => es.iter().map(|e| e.len()).sum(),
        }
    }

    /// Number of epochs (1 for sequential regions).
    pub fn epochs(&self) -> usize {
        match self {
            RegionView::Sequential(_) => 1,
            RegionView::Parallel(es) => es.len(),
        }
    }
}

/// A borrowed view of a complete program: the simulator's input type.
#[derive(Debug, Clone)]
pub struct ProgramView<'a> {
    /// Human-readable benchmark name.
    pub name: &'a str,
    /// The regions, in execution order.
    pub regions: Vec<RegionView<'a>>,
}

impl<'a> ProgramView<'a> {
    /// Total dynamic instructions across all regions.
    pub fn total_ops(&self) -> usize {
        self.regions.iter().map(RegionView::ops).sum()
    }

    /// Computes the Table-2 style static statistics of this view.
    pub fn stats(&self) -> TraceStats {
        TraceStats::of_view(self)
    }

    /// Counts the parallel epochs attributed to `module` and their total
    /// dynamic instructions (see [`TraceProgram::epochs_of_module`]).
    pub fn epochs_of_module(&self, module: u16) -> (u64, u64) {
        let mut epochs = 0u64;
        let mut ops = 0u64;
        for r in &self.regions {
            if let RegionView::Parallel(es) = r {
                for e in es {
                    if e.first().is_some_and(|o| o.pc().module() == module) {
                        epochs += 1;
                        ops += e.len() as u64;
                    }
                }
            }
        }
        (epochs, ops)
    }

    /// Iterates over all ops in sequential execution order.
    pub fn iter_ops(&self) -> impl Iterator<Item = &'a TraceOp> + '_ {
        self.regions
            .iter()
            .flat_map(|r| match r {
                RegionView::Sequential(e) => std::slice::from_ref(e).iter(),
                RegionView::Parallel(es) => es.as_slice().iter(),
            })
            .flat_map(|e| e.iter())
    }

    /// Materializes the view into an owned program (copies the ops);
    /// used when a borrowed source must outlive its backing storage,
    /// e.g. healing a mapped snapshot into a rewritten file.
    pub fn to_program(&self) -> TraceProgram {
        let regions = self
            .regions
            .iter()
            .map(|r| match r {
                RegionView::Sequential(e) => Region::Sequential(Epoch::new(e.to_vec())),
                RegionView::Parallel(es) => {
                    Region::Parallel(es.iter().map(|e| Epoch::new(e.to_vec())).collect())
                }
            })
            .collect();
        TraceProgram::new(self.name, regions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, OpSink, Pc, ProgramBuilder};

    fn sample() -> TraceProgram {
        let mut b = ProgramBuilder::new("v");
        b.int_ops(Pc::new(1, 0), 4);
        b.begin_parallel();
        for i in 0..3u64 {
            b.begin_epoch();
            b.load(Pc::new(2, 0), Addr(64 * i), 8);
            b.int_ops(Pc::new(2, 1), 5);
            b.end_epoch();
        }
        b.end_parallel();
        b.finish()
    }

    #[test]
    fn view_mirrors_program() {
        let p = sample();
        let v = p.view();
        assert_eq!(v.name, p.name);
        assert_eq!(v.total_ops(), p.total_ops());
        assert_eq!(v.regions.len(), p.regions.len());
        assert_eq!(v.stats(), p.stats());
        assert_eq!(v.epochs_of_module(2), p.epochs_of_module(2));
        assert!(v.iter_ops().zip(p.iter_ops()).all(|(a, b)| a == b));
        assert_eq!(v.iter_ops().count(), p.iter_ops().count());
    }

    #[test]
    fn view_round_trips_to_owned() {
        let p = sample();
        let back = p.view().to_program();
        assert_eq!(back.name, p.name);
        assert_eq!(back.total_ops(), p.total_ops());
        assert!(back.iter_ops().zip(p.iter_ops()).all(|(a, b)| a == b));
    }
}
