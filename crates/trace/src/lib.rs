//! Instruction-trace representation for the sub-thread TLS simulator.
//!
//! The simulator reproduced here (Colohan et al., *Tolerating Dependences
//! Between Large Speculative Threads Via Sub-Threads*, ISCA 2006) is
//! **trace-driven**: a workload executes once, recording every dynamic
//! instruction it would have run, and the timing model then replays that
//! trace on a simulated chip multiprocessor. This crate defines the trace
//! vocabulary shared by the workload generators (`tls-minidb`) and the
//! timing model (`tls-core`):
//!
//! * [`TraceOp`] — one dynamic instruction: a synthetic program counter
//!   ([`Pc`]), an operation class with its latency or memory address, and an
//!   optional data dependence on an earlier instruction.
//! * [`Epoch`] — the unit of speculative parallelism: one iteration of a
//!   loop the programmer marked parallel. Epochs are totally ordered by
//!   their position in the original sequential execution.
//! * [`Region`] / [`TraceProgram`] — a program is an alternation of
//!   sequential regions and parallel regions (each a vector of epochs).
//! * [`ProgramBuilder`] / [`OpSink`] — ergonomic construction of programs,
//!   used by both the TPC-C workload and hand-built microbenchmarks.
//! * [`TraceStats`] — the static statistics behind Table 2 of the paper
//!   (coverage, average thread size, speculative instructions per thread).
//!
//! # Example
//!
//! ```
//! use tls_trace::{ProgramBuilder, OpSink, Pc, Addr};
//!
//! let mut b = ProgramBuilder::new("demo");
//! b.int_ops(Pc::new(1, 0), 10); // sequential prologue
//! b.begin_parallel();
//! for i in 0..4u64 {
//!     b.begin_epoch();
//!     b.load(Pc::new(2, 0), Addr(0x1000 + 8 * i), 8);
//!     b.int_ops(Pc::new(2, 1), 100);
//!     b.store(Pc::new(2, 2), Addr(0x2000 + 8 * i), 8);
//!     b.end_epoch();
//! }
//! b.end_parallel();
//! let program = b.finish();
//! let stats = program.stats();
//! assert_eq!(stats.epochs, 4);
//! assert!(stats.coverage() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod op;
mod program;
mod stats;
mod view;

pub use builder::{OpSink, ProgramBuilder};
pub use op::{latency, Addr, LatchId, OpKind, Pc, RawOpError, TraceOp, SCAN_LOOP_MODULE};
pub use program::{Epoch, EpochId, Region, TraceProgram};
pub use stats::TraceStats;
pub use view::{ProgramView, RegionView};
