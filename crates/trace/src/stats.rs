//! Static trace statistics (the quantities reported in Table 2 of the
//! paper, minus the cycle counts which come from the timing model).

use crate::{ProgramView, RegionView, TraceProgram};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Statistics of a [`TraceProgram`].
///
/// * `coverage` — fraction of dynamic instructions inside parallel regions
///   (Table 2 "Coverage"). Low coverage bounds TLS speedup by Amdahl's law.
/// * `avg_epoch_ops` — average speculative thread size in dynamic
///   instructions (Table 2 "Avg. Thread Size").
/// * `epochs` — number of speculative threads (Table 2 "Threads per
///   Transaction" once divided by the transaction count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub total_ops: usize,
    /// Dynamic instructions inside parallel regions.
    pub parallel_ops: usize,
    /// Number of epochs across all parallel regions.
    pub epochs: usize,
    /// Number of parallel regions.
    pub parallel_regions: usize,
    /// Dynamic loads inside parallel regions.
    pub spec_loads: usize,
    /// Dynamic stores inside parallel regions.
    pub spec_stores: usize,
    /// Largest epoch, in dynamic instructions.
    pub max_epoch_ops: usize,
    /// Smallest non-empty epoch, in dynamic instructions.
    pub min_epoch_ops: usize,
}

impl TraceStats {
    /// Computes statistics for `program`.
    pub fn of(program: &TraceProgram) -> Self {
        Self::of_view(&program.view())
    }

    /// Computes statistics for a borrowed [`ProgramView`] (the same
    /// quantities as [`TraceStats::of`], without requiring an owned
    /// program — used by the memory-mapped trace store).
    pub fn of_view(view: &ProgramView<'_>) -> Self {
        let mut s = TraceStats { min_epoch_ops: usize::MAX, ..Default::default() };
        for region in &view.regions {
            s.total_ops += region.ops();
            if let RegionView::Parallel(epochs) = region {
                s.parallel_regions += 1;
                s.parallel_ops += region.ops();
                for e in epochs {
                    s.epochs += 1;
                    s.max_epoch_ops = s.max_epoch_ops.max(e.len());
                    if !e.is_empty() {
                        s.min_epoch_ops = s.min_epoch_ops.min(e.len());
                    }
                    for op in *e {
                        if op.is_load() {
                            s.spec_loads += 1;
                        } else if op.is_store() {
                            s.spec_stores += 1;
                        }
                    }
                }
            }
        }
        if s.min_epoch_ops == usize::MAX {
            s.min_epoch_ops = 0;
        }
        s
    }

    /// Fraction of dynamic instructions inside parallel regions, in `0..=1`.
    /// Returns 0 for an empty program.
    pub fn coverage(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.parallel_ops as f64 / self.total_ops as f64
        }
    }

    /// Average epoch size in dynamic instructions (0 if there are no
    /// epochs).
    pub fn avg_epoch_ops(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.parallel_ops as f64 / self.epochs as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops, {:.1}% coverage, {} epochs averaging {:.0} ops \
             ({} loads / {} stores speculative)",
            self.total_ops,
            100.0 * self.coverage(),
            self.epochs,
            self.avg_epoch_ops(),
            self.spec_loads,
            self.spec_stores,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, OpSink, Pc, ProgramBuilder};

    fn sample() -> TraceProgram {
        let mut b = ProgramBuilder::new("s");
        b.int_ops(Pc::new(0, 0), 10);
        b.begin_parallel();
        for i in 0..2u64 {
            b.begin_epoch();
            b.load(Pc::new(0, 1), Addr(64 * i), 8);
            b.int_ops(Pc::new(0, 2), 18);
            b.store(Pc::new(0, 3), Addr(64 * i), 8);
            b.end_epoch();
        }
        b.end_parallel();
        b.finish()
    }

    #[test]
    fn counts_and_coverage() {
        let s = sample().stats();
        assert_eq!(s.total_ops, 50);
        assert_eq!(s.parallel_ops, 40);
        assert_eq!(s.epochs, 2);
        assert_eq!(s.parallel_regions, 1);
        assert_eq!(s.spec_loads, 2);
        assert_eq!(s.spec_stores, 2);
        assert!((s.coverage() - 0.8).abs() < 1e-12);
        assert!((s.avg_epoch_ops() - 20.0).abs() < 1e-12);
        assert_eq!(s.max_epoch_ops, 20);
        assert_eq!(s.min_epoch_ops, 20);
    }

    #[test]
    fn empty_program_is_all_zero() {
        let p = TraceProgram::new("empty", vec![]);
        let s = p.stats();
        assert_eq!(s.total_ops, 0);
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.avg_epoch_ops(), 0.0);
        assert_eq!(s.min_epoch_ops, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = sample().stats();
        let text = format!("{s}");
        assert!(text.contains("coverage"));
        assert!(text.contains("epochs"));
    }
}
