//! Property tests of the trace layer: packing round-trips, statistics
//! arithmetic, and serde serialization.

use proptest::prelude::*;
use tls_trace::{Addr, Epoch, LatchId, OpKind, Pc, Region, TraceOp, TraceProgram};

fn gen_traceop() -> impl Strategy<Value = TraceOp> {
    let pc = (any::<u16>(), any::<u16>()).prop_map(|(m, s)| Pc::new(m, s));
    prop_oneof![
        (pc.clone(), 1u8..=200).prop_map(|(pc, l)| TraceOp::int_alu(pc, l)),
        (pc.clone(), 1u8..=200).prop_map(|(pc, l)| TraceOp::fp_alu(pc, l)),
        (pc.clone(), any::<u64>(), 1u8..=8, any::<u16>()).prop_map(|(pc, a, s, d)| TraceOp::load(
            pc,
            Addr(a),
            s
        )
        .with_dep(d)),
        (pc.clone(), any::<u64>(), 1u8..=8).prop_map(|(pc, a, s)| TraceOp::store(pc, Addr(a), s)),
        (pc.clone(), any::<bool>()).prop_map(|(pc, t)| TraceOp::branch(pc, t)),
        (pc.clone(), any::<u16>()).prop_map(|(pc, l)| TraceOp::latch_acquire(pc, LatchId(l))),
        (pc, any::<u16>()).prop_map(|(pc, l)| TraceOp::latch_release(pc, LatchId(l))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The 16-byte packing decodes to exactly what was encoded.
    #[test]
    fn op_packing_round_trips(op in gen_traceop()) {
        let kind = op.kind();
        match kind {
            OpKind::Load { addr, size } => {
                prop_assert!(op.is_load() && op.is_mem());
                prop_assert_eq!(op.mem_addr(), Some(addr));
                prop_assert!((1..=8).contains(&size));
            }
            OpKind::Store { addr, .. } => {
                prop_assert!(op.is_store() && op.is_mem());
                prop_assert_eq!(op.mem_addr(), Some(addr));
            }
            _ => prop_assert!(!op.is_mem()),
        }
        // Re-encoding by kind gives an equal op (dep preserved separately).
        let rebuilt = match kind {
            OpKind::IntAlu { latency } => TraceOp::int_alu(op.pc(), latency),
            OpKind::FpAlu { latency } => TraceOp::fp_alu(op.pc(), latency),
            OpKind::Load { addr, size } => TraceOp::load(op.pc(), addr, size),
            OpKind::Store { addr, size } => TraceOp::store(op.pc(), addr, size),
            OpKind::Branch { taken } => TraceOp::branch(op.pc(), taken),
            OpKind::LatchAcquire(l) => TraceOp::latch_acquire(op.pc(), l),
            OpKind::LatchRelease(l) => TraceOp::latch_release(op.pc(), l),
        }.with_dep(op.dep());
        prop_assert_eq!(rebuilt, op);
    }

    /// Serde round-trips the packed representation losslessly.
    #[test]
    fn op_serde_round_trips(ops in proptest::collection::vec(gen_traceop(), 0..50)) {
        let program = TraceProgram::new(
            "rt",
            vec![Region::Sequential(Epoch::new(ops.clone()))],
        );
        let json = serde_json::to_string(&program).expect("serialize");
        let back: TraceProgram = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back.total_ops(), ops.len());
        for (a, b) in back.iter_ops().zip(ops.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Statistics identities hold for arbitrary region structures.
    #[test]
    fn stats_identities(
        seqs in proptest::collection::vec(0usize..40, 0..4),
        epochs in proptest::collection::vec(proptest::collection::vec(0usize..40, 0..6), 0..4),
    ) {
        let mut regions = Vec::new();
        for n in &seqs {
            regions.push(Region::Sequential(Epoch::new(
                (0..*n).map(|i| TraceOp::int_alu(Pc::new(0, i as u16), 1)).collect(),
            )));
        }
        for par in &epochs {
            regions.push(Region::Parallel(
                par.iter()
                    .map(|n| Epoch::new(
                        (0..*n).map(|i| TraceOp::int_alu(Pc::new(1, i as u16), 1)).collect(),
                    ))
                    .collect(),
            ));
        }
        let p = TraceProgram::new("s", regions);
        let s = p.stats();
        let seq_total: usize = seqs.iter().sum();
        let par_total: usize = epochs.iter().flatten().sum();
        prop_assert_eq!(s.total_ops, seq_total + par_total);
        prop_assert_eq!(s.parallel_ops, par_total);
        prop_assert_eq!(s.epochs, epochs.iter().map(Vec::len).sum::<usize>());
        prop_assert!(s.coverage() >= 0.0 && s.coverage() <= 1.0);
        prop_assert_eq!(p.iter_ops().count(), s.total_ops);
    }
}
