//! Property tests of the cache building blocks against reference models.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use tls_cache::{CacheParams, Inserted, L1Data, SetAssoc, VictimBuffer};
use tls_trace::Addr;

#[derive(Debug, Clone)]
enum SaOp {
    Insert(u8, u16),
    Probe(u8),
    Remove(u8),
}

fn sa_op() -> impl Strategy<Value = SaOp> {
    prop_oneof![
        3 => (any::<u8>(), any::<u16>()).prop_map(|(k, v)| SaOp::Insert(k, v)),
        2 => any::<u8>().prop_map(SaOp::Probe),
        1 => any::<u8>().prop_map(SaOp::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The set-associative array behaves as a bounded map: a probe hit
    /// returns the latest inserted value; capacity per set is never
    /// exceeded; anything reported evicted or removed is really gone.
    #[test]
    fn setassoc_is_a_bounded_map(ops in proptest::collection::vec(sa_op(), 1..300)) {
        const SETS: usize = 4;
        const WAYS: usize = 3;
        let mut c: SetAssoc<u8, u16> = SetAssoc::new(SETS, WAYS);
        // key -> value for keys we believe resident.
        let mut resident: HashMap<u8, u16> = HashMap::new();
        let set_of = |k: u8| (k as usize) % SETS;

        for op in ops {
            match op {
                SaOp::Insert(k, v) => {
                    if resident.contains_key(&k) {
                        // Duplicate inserts panic by contract; update via
                        // probe instead.
                        *c.probe(set_of(k), k).expect("resident key probes") = v;
                        resident.insert(k, v);
                    } else {
                        match c.insert(set_of(k), k, v) {
                            Inserted::Placed => {}
                            Inserted::Evicted(old_k, _) => {
                                prop_assert_eq!(set_of(old_k), set_of(k), "evicts same set");
                                resident.remove(&old_k);
                            }
                            Inserted::SetFull => prop_assert!(false, "unfiltered insert"),
                        }
                        resident.insert(k, v);
                    }
                }
                SaOp::Probe(k) => {
                    match (c.probe(set_of(k), k), resident.get(&k)) {
                        (Some(got), Some(want)) => prop_assert_eq!(*got, *want),
                        (None, None) => {}
                        (got, want) => prop_assert!(
                            false, "probe mismatch for {k}: {got:?} vs {want:?}"),
                    }
                }
                SaOp::Remove(k) => {
                    let removed = c.remove(set_of(k), k);
                    prop_assert_eq!(removed.is_some(), resident.remove(&k).is_some());
                }
            }
            // Structural invariants after every step.
            prop_assert_eq!(c.len(), resident.len());
            for s in 0..SETS {
                prop_assert!(c.set_len(s) <= WAYS);
            }
        }
    }

    /// The victim buffer never exceeds capacity, never duplicates keys,
    /// and `take` finds exactly the still-buffered entries.
    #[test]
    fn victim_buffer_is_a_bounded_set(
        keys in proptest::collection::vec(0u16..40, 1..200),
        cap in 1usize..8,
    ) {
        let mut v: VictimBuffer<u16, u16> = VictimBuffer::new(cap);
        let mut resident: HashSet<u16> = HashSet::new();
        for (i, k) in keys.iter().enumerate() {
            if resident.contains(k) {
                // Contract: no duplicate inserts; take first.
                prop_assert!(v.take(*k).is_some());
                resident.remove(k);
            }
            if let Some((lost, _)) = v.insert(*k, i as u16) {
                prop_assert!(resident.remove(&lost) || lost == *k,
                    "displaced key {lost} was not resident");
            }
            if cap > 0 {
                resident.insert(*k);
            }
            prop_assert!(v.len() <= cap);
            prop_assert_eq!(v.len(), resident.len());
        }
        for k in resident.clone() {
            prop_assert!(v.take(k).is_some(), "resident key {k} must be takeable");
        }
        prop_assert!(v.is_empty());
    }

    /// L1 sanity: a line read after a fill hits until invalidated; the
    /// speculative flash-invalidate drops exactly the modified lines.
    #[test]
    fn l1_read_after_fill_hits_until_invalidated(
        lines in proptest::collection::vec(0u64..64, 1..60),
        spec_writes in proptest::collection::vec(0u64..64, 0..20),
    ) {
        let mut c = L1Data::new(CacheParams::new(64 * 32, 2, 32)); // 32 sets... 64 lines
        let mut maybe_resident: HashSet<u64> = HashSet::new();
        for l in &lines {
            c.fill(Addr(l * 32), false);
            maybe_resident.insert(*l);
        }
        let mut dirty: HashSet<u64> = HashSet::new();
        for l in &spec_writes {
            if c.write(Addr(l * 32), true) == tls_cache::L1WriteOutcome::Hit {
                dirty.insert(*l);
            }
        }
        let dropped = c.invalidate_speculative();
        prop_assert_eq!(dropped, dirty.len() as u64);
        for l in dirty {
            prop_assert!(!c.read(Addr(l * 32), false).hit, "dirty line {l} must be gone");
        }
    }
}
