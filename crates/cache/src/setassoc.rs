//! A generic set-associative array with true-LRU replacement.
//!
//! The same structure backs the private L1s (key = line address) and the
//! multi-versioned shared L2 in `tls-core`, where the key is a *(line
//! address, version owner)* pair so that several speculative versions of
//! one line occupy several ways of the same set — exactly the paper's
//! "multiple versions of each cache line [managed] by using the different
//! ways of each associative set".

use std::fmt::Debug;

/// One resident entry: key, payload, and recency stamp.
#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    stamp: u64,
}

/// Result of inserting into a set that may already be full.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inserted<K, V> {
    /// There was a free way; nothing was displaced.
    Placed,
    /// The LRU entry (subject to the eviction filter) was displaced.
    Evicted(K, V),
    /// Every resident entry was protected by the eviction filter; the new
    /// entry was **not** inserted. The caller decides what to do (the
    /// TLS L2 treats this as a speculative-overflow stall/violation).
    SetFull,
}

/// A set-associative array of `K → V` with true-LRU replacement.
///
/// Not a timing model: time enters only through the monotonically
/// increasing use counter used for LRU ordering.
#[derive(Debug, Clone)]
pub struct SetAssoc<K, V> {
    sets: Vec<Vec<Entry<K, V>>>,
    ways: usize,
    tick: u64,
}

impl<K: Copy + Eq + Debug, V> SetAssoc<K, V> {
    /// An empty array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one set and way");
        SetAssoc { sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(), ways, tick: 0 }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `key` in `set`, refreshing its recency on hit.
    pub fn probe(&mut self, set: usize, key: K) -> Option<&mut V> {
        let stamp = self.bump();
        let entry = self.sets[set].iter_mut().find(|e| e.key == key)?;
        entry.stamp = stamp;
        Some(&mut entry.value)
    }

    /// Looks up `key` without updating recency (for monitoring / asserts).
    pub fn peek(&self, set: usize, key: K) -> Option<&V> {
        self.sets[set].iter().find(|e| e.key == key).map(|e| &e.value)
    }

    /// Finds the first entry of `set` matching `pred` in a single scan,
    /// refreshing its recency on hit; a miss leaves the LRU clock
    /// untouched. Returns the matching key.
    ///
    /// Equivalent to a `set_iter_mut().find(...)` followed by a
    /// [`probe`](SetAssoc::probe) of the found key, but walks the set
    /// once instead of twice.
    pub fn touch_where(&mut self, set: usize, mut pred: impl FnMut(&K) -> bool) -> Option<K> {
        let entry = self.sets[set].iter_mut().find(|e| pred(&e.key))?;
        self.tick += 1;
        entry.stamp = self.tick;
        Some(entry.key)
    }

    /// Inserts `key → value`, evicting the least-recently-used entry for
    /// which `may_evict` returns true if the set is full.
    ///
    /// If the set is full and *no* entry may be evicted, returns
    /// [`Inserted::SetFull`] and does not insert.
    ///
    /// # Panics
    ///
    /// Panics if `key` is already resident — update via
    /// [`probe`](SetAssoc::probe) instead; duplicate keys would corrupt
    /// LRU state.
    pub fn insert_with(
        &mut self,
        set: usize,
        key: K,
        value: V,
        mut may_evict: impl FnMut(&K, &V) -> bool,
    ) -> Inserted<K, V> {
        assert!(
            self.sets[set].iter().all(|e| e.key != key),
            "duplicate insert of key {key:?} into set {set}"
        );
        let stamp = self.bump();
        if self.sets[set].len() < self.ways {
            self.sets[set].push(Entry { key, value, stamp });
            return Inserted::Placed;
        }
        let victim = self.sets[set]
            .iter()
            .enumerate()
            .filter(|(_, e)| may_evict(&e.key, &e.value))
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let old = std::mem::replace(&mut self.sets[set][i], Entry { key, value, stamp });
                Inserted::Evicted(old.key, old.value)
            }
            None => Inserted::SetFull,
        }
    }

    /// Inserts with unconditional LRU eviction.
    pub fn insert(&mut self, set: usize, key: K, value: V) -> Inserted<K, V> {
        self.insert_with(set, key, value, |_, _| true)
    }

    /// Removes and returns the entry for `key`, if resident.
    pub fn remove(&mut self, set: usize, key: K) -> Option<V> {
        let i = self.sets[set].iter().position(|e| e.key == key)?;
        Some(self.sets[set].swap_remove(i).value)
    }

    /// Drops every entry for which the predicate returns false.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &mut V) -> bool) {
        for set in &mut self.sets {
            set.retain_mut(|e| keep(&e.key, &mut e.value));
        }
    }

    /// Iterates over all resident `(set, key, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &K, &V)> + '_ {
        self.sets.iter().enumerate().flat_map(|(s, v)| v.iter().map(move |e| (s, &e.key, &e.value)))
    }

    /// Mutable iteration over all resident entries of one set.
    pub fn set_iter_mut(&mut self, set: usize) -> impl Iterator<Item = (&K, &mut V)> + '_ {
        self.sets[set].iter_mut().map(|e| (&e.key, &mut e.value))
    }

    /// Number of resident entries across all sets.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of resident entries in one set.
    pub fn set_len(&self, set: usize) -> usize {
        self.sets[set].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_free_ways_before_evicting() {
        let mut c: SetAssoc<u64, u32> = SetAssoc::new(1, 2);
        assert_eq!(c.insert(0, 1, 10), Inserted::Placed);
        assert_eq!(c.insert(0, 2, 20), Inserted::Placed);
        assert_eq!(c.insert(0, 3, 30), Inserted::Evicted(1, 10));
    }

    #[test]
    fn probe_refreshes_lru() {
        let mut c: SetAssoc<u64, u32> = SetAssoc::new(1, 2);
        c.insert(0, 1, 10);
        c.insert(0, 2, 20);
        assert_eq!(c.probe(0, 1), Some(&mut 10)); // 1 is now MRU
        assert_eq!(c.insert(0, 3, 30), Inserted::Evicted(2, 20));
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut c: SetAssoc<u64, u32> = SetAssoc::new(1, 2);
        c.insert(0, 1, 10);
        c.insert(0, 2, 20);
        assert_eq!(c.peek(0, 1), Some(&10));
        assert_eq!(c.insert(0, 3, 30), Inserted::Evicted(1, 10));
    }

    #[test]
    fn eviction_filter_protects_entries() {
        let mut c: SetAssoc<u64, bool> = SetAssoc::new(1, 2);
        c.insert(0, 1, true); // protected
        c.insert(0, 2, false);
        // Only unprotected entries may be evicted.
        assert_eq!(c.insert_with(0, 3, false, |_, v| !*v), Inserted::Evicted(2, false));
        // Now 1 (protected) and 3 (protected after update) fill the set.
        *c.probe(0, 3).unwrap() = true;
        assert_eq!(c.insert_with(0, 4, false, |_, v| !*v), Inserted::SetFull);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_and_retain() {
        let mut c: SetAssoc<u64, u32> = SetAssoc::new(2, 2);
        c.insert(0, 1, 10);
        c.insert(1, 2, 20);
        c.insert(1, 3, 30);
        assert_eq!(c.remove(1, 2), Some(20));
        assert_eq!(c.remove(1, 2), None);
        c.retain(|_, v| *v > 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(1, 3), Some(&30));
    }

    #[test]
    fn same_key_different_sets_coexist() {
        let mut c: SetAssoc<u64, u32> = SetAssoc::new(2, 1);
        c.insert(0, 7, 1);
        c.insert(1, 7, 2);
        assert_eq!(c.peek(0, 7), Some(&1));
        assert_eq!(c.peek(1, 7), Some(&2));
    }

    #[test]
    #[should_panic(expected = "duplicate insert")]
    fn duplicate_insert_panics() {
        let mut c: SetAssoc<u64, u32> = SetAssoc::new(1, 2);
        c.insert(0, 1, 10);
        c.insert(0, 1, 11);
    }

    #[test]
    fn tuple_keys_model_versions() {
        // (line, owner) keys: two versions of line 5 in one set.
        let mut c: SetAssoc<(u64, u8), u32> = SetAssoc::new(1, 4);
        c.insert(0, (5, 0), 100);
        c.insert(0, (5, 1), 200);
        assert_eq!(c.peek(0, (5, 0)), Some(&100));
        assert_eq!(c.peek(0, (5, 1)), Some(&200));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn touch_where_refreshes_only_on_hit() {
        let mut c: SetAssoc<(u64, u8), u32> = SetAssoc::new(1, 3);
        c.insert(0, (5, 0), 100);
        c.insert(0, (5, 1), 200);
        c.insert(0, (9, 0), 300);
        // Hit: finds the first matching entry and makes it MRU.
        assert_eq!(c.touch_where(0, |k| k.0 == 5), Some((5, 0)));
        // Miss: no recency churn, so the LRU order is unchanged and the
        // untouched (5, 1) is the next victim.
        assert_eq!(c.touch_where(0, |k| k.0 == 77), None);
        assert_eq!(c.insert(0, (1, 0), 400), Inserted::Evicted((5, 1), 200));
    }

    #[test]
    fn touch_where_matches_find_plus_probe_tick_sequence() {
        // The merged scan must bump the LRU clock exactly like the old
        // two-pass find-then-probe: once per hit, zero per miss.
        let mut a: SetAssoc<(u64, u8), u32> = SetAssoc::new(1, 4);
        let mut b: SetAssoc<(u64, u8), u32> = SetAssoc::new(1, 4);
        for c in [&mut a, &mut b] {
            c.insert(0, (5, 0), 1);
            c.insert(0, (5, 1), 2);
            c.insert(0, (6, 0), 3);
        }
        // Old idiom on `a`.
        for line in [5u64, 6, 7, 5] {
            let found =
                a.set_iter_mut(0).find_map(|(k, _)| if k.0 == line { Some(*k) } else { None });
            if let Some(key) = found {
                a.probe(0, key);
            }
        }
        // New idiom on `b`.
        for line in [5u64, 6, 7, 5] {
            b.touch_where(0, |k| k.0 == line);
        }
        // Same LRU state ⇒ same victim on the next two inserts.
        assert_eq!(a.insert(0, (8, 0), 9), b.insert(0, (8, 0), 9));
        assert_eq!(a.insert(0, (9, 0), 9), b.insert(0, (9, 0), 9));
    }

    #[test]
    fn iter_covers_everything() {
        let mut c: SetAssoc<u64, u32> = SetAssoc::new(4, 2);
        for i in 0..6u64 {
            c.insert((i % 4) as usize, i, i as u32);
        }
        assert_eq!(c.iter().count(), 6);
    }
}
