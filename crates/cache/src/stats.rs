//! Hit/miss accounting shared by every cache level.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Access counters for one cache (or one class of accesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups performed.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
    /// Lines invalidated by coherence or violation recovery.
    pub invalidations: u64,
}

impl CacheStats {
    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `0..=1`; 0 for an untouched cache.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Records one access that either hit or missed.
    pub fn record(&mut self, hit: bool) {
        self.accesses += 1;
        if hit {
            self.hits += 1;
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.accesses += rhs.accesses;
        self.hits += rhs.hits;
        self.evictions += rhs.evictions;
        self.invalidations += rhs.invalidations;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%), {} evictions, {} invalidations",
            self.accesses,
            self.misses(),
            100.0 * self.miss_ratio(),
            self.evictions,
            self.invalidations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_ratio() {
        let mut s = CacheStats::default();
        s.record(true);
        s.record(false);
        s.record(false);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 2);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = CacheStats { accesses: 1, hits: 1, evictions: 2, invalidations: 3 };
        a += CacheStats { accesses: 10, hits: 5, evictions: 1, invalidations: 0 };
        assert_eq!(a, CacheStats { accesses: 11, hits: 6, evictions: 3, invalidations: 3 });
    }

    #[test]
    fn display_mentions_misses() {
        let s = CacheStats { accesses: 4, hits: 3, ..Default::default() };
        assert!(format!("{s}").contains("1 misses"));
    }
}
