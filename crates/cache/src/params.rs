//! Cache and memory-system parameters (Table 1 of the paper) and the
//! associated address geometry math.

use serde::{Deserialize, Serialize};
use tls_trace::Addr;

/// Geometry of one set-associative cache.
///
/// ```
/// use tls_cache::CacheParams;
/// use tls_trace::Addr;
///
/// let l1 = CacheParams::paper_l1(); // 32 KB, 4-way, 32 B lines
/// assert_eq!(l1.sets(), 256);
/// assert_eq!(l1.line_addr(Addr(0x1234)), Addr(0x1220));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u32,
}

impl CacheParams {
    /// Creates cache parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` and the resulting set count are nonzero
    /// powers of two and `ways >= 1`.
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways >= 1, "associativity must be at least 1");
        let p = CacheParams { size_bytes, ways, line_bytes };
        let sets = p.sets();
        assert!(sets >= 1 && sets.is_power_of_two(), "set count {sets} must be a power of two");
        p
    }

    /// The paper's L1 data/instruction cache: 32 KB, 4-way, 32-byte lines.
    pub fn paper_l1() -> Self {
        CacheParams::new(32 * 1024, 4, 32)
    }

    /// The paper's unified L2: 2 MB, 4-way, 32-byte lines.
    pub fn paper_l2() -> Self {
        CacheParams::new(2 * 1024 * 1024, 4, 32)
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes as u64)
    }

    /// log2(line size).
    pub fn line_shift(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// The line-aligned address containing `addr`.
    pub fn line_addr(&self, addr: Addr) -> Addr {
        addr.align_down(self.line_shift())
    }

    /// The set index for a (line or byte) address.
    pub fn set_index(&self, addr: Addr) -> usize {
        ((addr.0 >> self.line_shift()) & (self.sets() - 1)) as usize
    }

    /// Words (8-byte units) per line — the granularity of the paper's
    /// speculative-modified tracking.
    pub fn words_per_line(&self) -> u32 {
        (self.line_bytes / 8).max(1)
    }

    /// The word index within its line of a byte address.
    pub fn word_in_line(&self, addr: Addr) -> u32 {
        ((addr.0 >> 3) & (self.words_per_line() as u64 - 1)) as u32
    }
}

/// Timing parameters of the shared L2, crossbar and main memory
/// (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemParams {
    /// Minimum load-to-use latency for an L1 miss that hits in the L2
    /// (Table 1: "Minimum Miss Latency to Secondary Cache": 10 cycles).
    pub l2_min_latency: u64,
    /// Minimum L1-miss latency to local memory (Table 1: 75 cycles).
    pub mem_min_latency: u64,
    /// Main-memory bandwidth: one new access may begin per this many
    /// cycles (Table 1: "1 access per 20 cycles").
    pub mem_issue_interval: u64,
    /// Number of independent L2 banks, line-interleaved (Table 1: 4).
    pub l2_banks: usize,
    /// Cycles one bank is busy per access: line size / crossbar width
    /// (32 B / 8 B per cycle = 4).
    pub bank_service_cycles: u64,
    /// Outstanding data-miss limit per CPU (Table 1 miss handlers: 128).
    pub data_mshrs: usize,
    /// Outstanding instruction-miss limit per CPU (Table 1: 2).
    pub inst_mshrs: usize,
}

impl MemParams {
    /// The paper's Table 1 configuration.
    pub fn paper_default() -> Self {
        MemParams {
            l2_min_latency: 10,
            mem_min_latency: 75,
            mem_issue_interval: 20,
            l2_banks: 4,
            bank_service_cycles: 4,
            data_mshrs: 128,
            inst_mshrs: 2,
        }
    }
}

impl Default for MemParams {
    fn default() -> Self {
        MemParams::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let p = CacheParams::paper_l1();
        assert_eq!(p.sets(), 256);
        assert_eq!(p.line_shift(), 5);
        assert_eq!(p.words_per_line(), 4);
    }

    #[test]
    fn paper_l2_geometry() {
        let p = CacheParams::paper_l2();
        assert_eq!(p.sets(), 16384);
    }

    #[test]
    fn set_index_wraps() {
        let p = CacheParams::paper_l1();
        let a = Addr(0);
        let b = Addr(256 * 32); // exactly one full stride of sets
        assert_eq!(p.set_index(a), p.set_index(b));
        assert_ne!(p.set_index(a), p.set_index(Addr(32)));
    }

    #[test]
    fn word_in_line() {
        let p = CacheParams::paper_l1();
        assert_eq!(p.word_in_line(Addr(0)), 0);
        assert_eq!(p.word_in_line(Addr(8)), 1);
        assert_eq!(p.word_in_line(Addr(25)), 3);
        assert_eq!(p.word_in_line(Addr(32)), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = CacheParams::new(1024, 2, 24);
    }

    #[test]
    fn mem_params_default_matches_paper() {
        let m = MemParams::default();
        assert_eq!(m.l2_min_latency, 10);
        assert_eq!(m.mem_min_latency, 75);
        assert_eq!(m.mem_issue_interval, 20);
        assert_eq!(m.l2_banks, 4);
    }
}
