//! Memory-hierarchy building blocks for the sub-thread TLS simulator.
//!
//! The paper (Colohan et al., ISCA 2006) extends a *conventional* CMP cache
//! hierarchy — private write-through L1s, a crossbar, and a shared,
//! multi-banked L2 with a small victim cache — with speculative state. This
//! crate provides the conventional half:
//!
//! * [`CacheParams`] / geometry math (line, set index, tag extraction);
//! * [`SetAssoc`] — a generic set-associative tag array with true-LRU
//!   replacement, reused by the L1s and by the multi-versioned L2 in
//!   `tls-core` (where a "way" may hold one *version* of a line);
//! * [`L1Data`] — the private write-through L1 data cache, with the
//!   per-line speculative marks the paper's L1 keeps (speculatively
//!   loaded/modified flags, flash-invalidated on violations);
//! * [`VictimBuffer`] — the fully-associative speculative victim cache that
//!   catches speculative L2 lines evicted by conflict misses;
//! * [`BankArray`], [`MemBus`], [`MshrFile`] — timing models for L2 bank
//!   contention, main-memory bandwidth, and outstanding-miss limits;
//! * [`CacheStats`] — hit/miss/eviction accounting.
//!
//! The TLS-specific parts (speculative load/modified bits per sub-thread
//! context, violation detection, version combination and commit) live in
//! `tls-core`, mirroring how the paper presents them as extensions to
//! ordinary cache hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod l1;
mod params;
mod setassoc;
mod stats;
mod timing;
mod victim;

pub use l1::{L1Data, L1ReadOutcome, L1WriteOutcome};
pub use params::{CacheParams, MemParams};
pub use setassoc::{Inserted, SetAssoc};
pub use stats::CacheStats;
pub use timing::{BankArray, MemBus, MshrFile};
pub use victim::VictimBuffer;
