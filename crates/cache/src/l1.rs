//! The private, write-through L1 data cache.
//!
//! Per the paper's design: each CPU's L1 "buffers cache lines that have
//! been speculatively read or modified by the thread executing on the
//! corresponding CPU"; it is **write-through**, "ensuring that store values
//! are aggressively propagated to the L2"; and it is unaware of sub-threads
//! — "any dependence violation results in the invalidation of all
//! speculatively-modified cache lines in the appropriate L1 cache".

use crate::{CacheParams, CacheStats, Inserted, SetAssoc};
use serde::{Deserialize, Serialize};
use tls_trace::Addr;

/// Per-line L1 state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct L1Line {
    /// Loaded speculatively by the current epoch on this CPU.
    spec_loaded: bool,
    /// Modified speculatively by the current epoch on this CPU.
    spec_modified: bool,
    /// Sub-thread of the first speculative load of this line (only
    /// meaningful while `spec_loaded`); used by the optional sub-thread-
    /// aware invalidation the paper evaluates and dismisses in §2.2.
    first_load_sub: u8,
    /// Highest sub-thread that speculatively modified this line.
    max_mod_sub: u8,
}

/// Outcome of a store against the L1 (the store itself always continues to
/// the L2 — the L1 is write-through, write-no-allocate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1WriteOutcome {
    /// The line was resident and has been updated in place.
    Hit,
    /// The line was not resident; the write went straight through.
    Miss,
}

/// Outcome of a load against the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1ReadOutcome {
    /// The line was resident.
    pub hit: bool,
    /// This access set the line's speculatively-loaded mark for the first
    /// time since the last commit/violation. On an L1 hit this tells the
    /// TLS layer it must still notify the L2 to record the
    /// speculatively-loaded bit for the current thread context.
    pub newly_spec_loaded: bool,
}

/// A private write-through L1 data cache.
///
/// Holds tags and speculative marks only — the simulator is trace-driven,
/// so no data payloads are stored anywhere in the hierarchy.
#[derive(Debug, Clone)]
pub struct L1Data {
    params: CacheParams,
    lines: SetAssoc<u64, L1Line>,
    stats: CacheStats,
}

impl L1Data {
    /// An empty L1 with the given geometry.
    pub fn new(params: CacheParams) -> Self {
        L1Data {
            params,
            lines: SetAssoc::new(params.sets() as usize, params.ways as usize),
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Handles a load of `addr`. On miss the caller fetches from the L2
    /// and then calls [`fill`](L1Data::fill).
    ///
    /// `speculative` marks the line as speculatively loaded so a later
    /// violation flash-invalidate can discard it; the outcome reports
    /// whether the mark is new (first speculative touch since the last
    /// commit or violation).
    pub fn read(&mut self, addr: Addr, speculative: bool) -> L1ReadOutcome {
        self.read_sub(addr, speculative, 0)
    }

    /// [`read`](L1Data::read) with the current sub-thread recorded, for
    /// machines with sub-thread-aware L1 invalidation.
    pub fn read_sub(&mut self, addr: Addr, speculative: bool, sub: u8) -> L1ReadOutcome {
        let line = self.params.line_addr(addr).0;
        let set = self.params.set_index(addr);
        let outcome = match self.lines.probe(set, line) {
            Some(state) => {
                let newly = speculative && !state.spec_loaded;
                if newly {
                    state.first_load_sub = sub;
                }
                state.spec_loaded |= speculative;
                L1ReadOutcome { hit: true, newly_spec_loaded: newly }
            }
            None => L1ReadOutcome { hit: false, newly_spec_loaded: speculative },
        };
        self.stats.record(outcome.hit);
        outcome
    }

    /// Installs the line containing `addr` after a miss was serviced.
    /// No-op if the line became resident in the meantime.
    pub fn fill(&mut self, addr: Addr, speculative: bool) {
        self.fill_sub(addr, speculative, 0)
    }

    /// [`fill`](L1Data::fill) with the current sub-thread recorded.
    pub fn fill_sub(&mut self, addr: Addr, speculative: bool, sub: u8) {
        let line = self.params.line_addr(addr).0;
        let set = self.params.set_index(addr);
        if let Some(state) = self.lines.probe(set, line) {
            if speculative && !state.spec_loaded {
                state.first_load_sub = sub;
            }
            state.spec_loaded |= speculative;
            return;
        }
        let state = L1Line {
            spec_loaded: speculative,
            spec_modified: false,
            first_load_sub: sub,
            max_mod_sub: 0,
        };
        if let Inserted::Evicted(..) = self.lines.insert(set, line, state) {
            self.stats.evictions += 1;
        }
    }

    /// Handles a store to `addr`: updates the line in place if resident
    /// (write-no-allocate on miss). The caller always forwards the store to
    /// the L2 (write-through).
    pub fn write(&mut self, addr: Addr, speculative: bool) -> L1WriteOutcome {
        self.write_sub(addr, speculative, 0)
    }

    /// [`write`](L1Data::write) with the current sub-thread recorded.
    pub fn write_sub(&mut self, addr: Addr, speculative: bool, sub: u8) -> L1WriteOutcome {
        let line = self.params.line_addr(addr).0;
        let set = self.params.set_index(addr);
        match self.lines.probe(set, line) {
            Some(state) => {
                state.spec_modified |= speculative;
                if speculative {
                    state.max_mod_sub = state.max_mod_sub.max(sub);
                }
                self.stats.record(true);
                L1WriteOutcome::Hit
            }
            None => {
                self.stats.record(false);
                L1WriteOutcome::Miss
            }
        }
    }

    /// Coherence invalidation of a single line (e.g. the L2 discarded a
    /// speculative version another CPU had cached). Returns true if the
    /// line was resident.
    pub fn invalidate_line(&mut self, line_addr: Addr) -> bool {
        let set = self.params.set_index(line_addr);
        let removed = self.lines.remove(set, line_addr.0).is_some();
        if removed {
            self.stats.invalidations += 1;
        }
        removed
    }

    /// Violation recovery: flash-invalidates every speculatively-modified
    /// line (paper §2.2) and clears the speculative marks on the rest.
    /// Returns the number of lines invalidated.
    pub fn invalidate_speculative(&mut self) -> u64 {
        self.invalidate_speculative_from(0)
    }

    /// Sub-thread-aware violation recovery (the §2.2 extension the paper
    /// found "not worthwhile", modeled for the ablation): only lines
    /// whose speculative modifications could include rewound sub-threads
    /// (`max_mod_sub >= from_sub`) are dropped; loaded marks from rewound
    /// sub-threads are cleared so the replay re-notifies the L2.
    pub fn invalidate_speculative_from(&mut self, from_sub: u8) -> u64 {
        let mut dropped = 0;
        self.lines.retain(|_, state| {
            if state.spec_modified && state.max_mod_sub >= from_sub {
                dropped += 1;
                return false;
            }
            if state.spec_loaded && state.first_load_sub >= from_sub {
                state.spec_loaded = false;
            }
            true
        });
        self.stats.invalidations += dropped;
        dropped
    }

    /// Epoch commit: the speculative marks become ordinary data.
    pub fn clear_speculative_marks(&mut self) {
        self.lines.retain(|_, state| {
            *state = L1Line::default();
            true
        });
    }

    /// Access counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Data {
        L1Data::new(CacheParams::paper_l1())
    }

    #[test]
    fn read_miss_then_fill_then_hit() {
        let mut c = l1();
        assert!(!c.read(Addr(0x100), false).hit);
        c.fill(Addr(0x100), false);
        assert!(c.read(Addr(0x100), false).hit);
        assert!(c.read(Addr(0x11f), false).hit); // same 32-byte line
        assert!(!c.read(Addr(0x120), false).hit); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses(), 2);
    }

    #[test]
    fn write_is_no_allocate() {
        let mut c = l1();
        assert_eq!(c.write(Addr(0x40), false), L1WriteOutcome::Miss);
        assert!(!c.read(Addr(0x40), false).hit); // still not resident
        c.fill(Addr(0x40), false);
        assert_eq!(c.write(Addr(0x40), false), L1WriteOutcome::Hit);
    }

    #[test]
    fn violation_invalidates_only_modified_lines() {
        let mut c = l1();
        c.fill(Addr(0x40), true); // spec loaded
        c.fill(Addr(0x80), false);
        c.write(Addr(0x80), true); // spec modified
        assert_eq!(c.invalidate_speculative(), 1);
        assert!(c.read(Addr(0x40), false).hit); // loaded line survives
        assert!(!c.read(Addr(0x80), false).hit); // modified line dropped
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn commit_clears_marks_but_keeps_lines() {
        let mut c = l1();
        c.fill(Addr(0x40), true);
        c.write(Addr(0x40), true);
        c.clear_speculative_marks();
        assert_eq!(c.invalidate_speculative(), 0);
        assert!(c.read(Addr(0x40), false).hit);
    }

    #[test]
    fn coherence_invalidation_removes_line() {
        let mut c = l1();
        c.fill(Addr(0x200), false);
        assert!(c.invalidate_line(Addr(0x200)));
        assert!(!c.invalidate_line(Addr(0x200)));
        assert!(!c.read(Addr(0x200), false).hit);
    }

    #[test]
    fn conflict_evictions_are_counted() {
        let mut c = l1();
        let stride = 256 * 32; // maps to the same set
        for i in 0..5u64 {
            c.fill(Addr(i * stride), false);
        }
        assert_eq!(c.stats().evictions, 1); // 4 ways + 1
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn first_spec_touch_is_flagged_once() {
        let mut c = l1();
        c.fill(Addr(0x40), false);
        let first = c.read(Addr(0x40), true);
        assert!(first.hit && first.newly_spec_loaded);
        let second = c.read(Addr(0x40), true);
        assert!(second.hit && !second.newly_spec_loaded);
        // After commit the next speculative touch is "new" again.
        c.clear_speculative_marks();
        assert!(c.read(Addr(0x40), true).newly_spec_loaded);
        // A miss is always a new speculative touch.
        assert!(c.read(Addr(0xF00), true).newly_spec_loaded);
    }

    #[test]
    fn fill_is_idempotent_for_resident_lines() {
        let mut c = l1();
        c.fill(Addr(0x40), false);
        c.fill(Addr(0x40), true); // upgrades the mark, no duplicate
        assert_eq!(c.resident_lines(), 1);
        assert_eq!(c.invalidate_speculative(), 0); // loaded-mark only
    }
}
