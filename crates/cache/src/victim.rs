//! The speculative victim cache.
//!
//! The paper adds "a 64-entry victim cache to the L2 to catch any
//! speculative cache lines which are evicted from the regular L2 cache",
//! sized so the worst-case transaction (largest threads × 8 sub-threads)
//! never stalls on speculative overflow. This is a small fully-associative
//! LRU buffer; the TLS layer decides what happens when even the victim
//! cache overflows (speculation fails for the youngest owner).

use crate::CacheStats;
use std::fmt::Debug;

/// A fully-associative LRU buffer of `K → V`.
#[derive(Debug, Clone)]
pub struct VictimBuffer<K, V> {
    entries: Vec<(K, V, u64)>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl<K: Copy + Eq + Debug, V> VictimBuffer<K, V> {
    /// An empty buffer holding at most `capacity` entries. A capacity of 0
    /// is allowed and models a machine without a victim cache.
    pub fn new(capacity: usize) -> Self {
        VictimBuffer {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resizes the buffer. Shrinking displaces the least-recently
    /// inserted surplus entries and returns them (oldest first) — the
    /// TLS layer treats displaced speculative lines as overflow events,
    /// which is exactly what the chaos harness's victim-squeeze fault
    /// leans on. Growing displaces nothing.
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<(K, V)> {
        self.capacity = capacity;
        let mut displaced = Vec::new();
        while self.entries.len() > self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
                .expect("len > capacity >= 0 implies non-empty");
            let (k, v, _) = self.entries.swap_remove(lru);
            self.stats.evictions += 1;
            displaced.push((k, v));
        }
        displaced
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes and returns the entry for `key` (a victim-cache hit swaps
    /// the line back into the L2, so lookups are destructive).
    pub fn take(&mut self, key: K) -> Option<V> {
        let pos = self.entries.iter().position(|(k, _, _)| *k == key);
        self.stats.record(pos.is_some());
        pos.map(|i| self.entries.swap_remove(i).1)
    }

    /// Removes and returns the first entry matching `pred`, without
    /// recording a hit/miss (used for silent probes such as "is any
    /// version of this line buffered?").
    pub fn take_where(&mut self, mut pred: impl FnMut(&K) -> bool) -> Option<(K, V)> {
        let pos = self.entries.iter().position(|(k, _, _)| pred(k))?;
        let (k, v, _) = self.entries.swap_remove(pos);
        Some((k, v))
    }

    /// True if any buffered key matches `pred`.
    pub fn contains_where(&self, mut pred: impl FnMut(&K) -> bool) -> bool {
        self.entries.iter().any(|(k, _, _)| pred(k))
    }

    /// Inserts an evicted line. If the buffer is full, the least-recently
    /// inserted entry is displaced and returned — the TLS layer treats a
    /// displaced *speculative* line as an overflow event.
    ///
    /// With capacity 0 the inserted entry itself bounces straight back.
    ///
    /// # Panics
    ///
    /// Panics if `key` is already buffered (the L2 must never hold two
    /// copies of the same version).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        assert!(
            self.entries.iter().all(|(k, _, _)| *k != key),
            "duplicate victim-cache insert of {key:?}"
        );
        self.tick += 1;
        if self.capacity == 0 {
            return Some((key, value));
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
                .expect("full buffer has an LRU entry");
            let (k, v, _) = self.entries.swap_remove(lru);
            self.entries.push((key, value, self.tick));
            self.stats.evictions += 1;
            return Some((k, v));
        }
        self.entries.push((key, value, self.tick));
        None
    }

    /// Drops every entry for which the predicate returns false (used when
    /// a thread's speculative versions are discarded or committed).
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v, _)| keep(k, v));
    }

    /// Iterates over buffered entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.entries.iter().map(|(k, v, _)| (k, v))
    }

    /// Hit/miss statistics of destructive lookups.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_destructive() {
        let mut v: VictimBuffer<u64, u32> = VictimBuffer::new(4);
        v.insert(1, 10);
        assert_eq!(v.take(1), Some(10));
        assert_eq!(v.take(1), None);
        assert_eq!(v.stats().hits, 1);
        assert_eq!(v.stats().misses(), 1);
    }

    #[test]
    fn overflow_displaces_oldest() {
        let mut v: VictimBuffer<u64, u32> = VictimBuffer::new(2);
        assert_eq!(v.insert(1, 10), None);
        assert_eq!(v.insert(2, 20), None);
        assert_eq!(v.insert(3, 30), Some((1, 10)));
        assert_eq!(v.len(), 2);
        assert_eq!(v.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_bounces_inserts() {
        let mut v: VictimBuffer<u64, u32> = VictimBuffer::new(0);
        assert_eq!(v.insert(1, 10), Some((1, 10)));
        assert!(v.is_empty());
    }

    #[test]
    fn set_capacity_shrink_displaces_oldest_first() {
        let mut v: VictimBuffer<u64, u32> = VictimBuffer::new(4);
        v.insert(1, 10);
        v.insert(2, 20);
        v.insert(3, 30);
        let displaced = v.set_capacity(1);
        assert_eq!(displaced, vec![(1, 10), (2, 20)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v.capacity(), 1);
        // Growing back displaces nothing and restores headroom.
        assert!(v.set_capacity(4).is_empty());
        assert_eq!(v.insert(5, 50), None);
    }

    #[test]
    fn retain_filters() {
        let mut v: VictimBuffer<u64, u32> = VictimBuffer::new(4);
        v.insert(1, 10);
        v.insert(2, 20);
        v.retain(|_, val| *val > 15);
        assert_eq!(v.len(), 1);
        assert_eq!(v.take(2), Some(20));
    }

    #[test]
    #[should_panic(expected = "duplicate victim-cache insert")]
    fn duplicate_insert_panics() {
        let mut v: VictimBuffer<u64, u32> = VictimBuffer::new(4);
        v.insert(1, 10);
        v.insert(1, 11);
    }

    #[test]
    fn take_where_matches_predicate_without_stats() {
        let mut v: VictimBuffer<(u64, u8), u32> = VictimBuffer::new(4);
        v.insert((5, 0), 50);
        v.insert((6, 1), 60);
        assert!(v.contains_where(|k| k.0 == 5));
        let (k, val) = v.take_where(|k| k.0 == 5).unwrap();
        assert_eq!((k, val), ((5, 0), 50));
        assert!(v.take_where(|k| k.0 == 5).is_none());
        assert_eq!(v.stats().accesses, 0);
    }

    #[test]
    fn iter_sees_all_entries() {
        let mut v: VictimBuffer<u64, u32> = VictimBuffer::new(4);
        v.insert(1, 10);
        v.insert(2, 20);
        let mut keys: Vec<u64> = v.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
    }
}
