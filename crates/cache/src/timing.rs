//! Contention timing models: L2 banks, the memory bus, and miss handlers.
//!
//! These are deliberately simple queueing models — each resource tracks
//! when it next becomes free and requests are serviced in arrival order —
//! which is how the paper's own simulator models "bandwidth and contention"
//! of the crossbar, banks and main memory.

use crate::MemParams;
use tls_trace::Addr;

/// The line-interleaved L2 bank array.
///
/// A request occupies its bank for [`MemParams::bank_service_cycles`]
/// (line transfer over the 8 B/cycle crossbar port); a busy bank delays the
/// request start.
#[derive(Debug, Clone)]
pub struct BankArray {
    next_free: Vec<u64>,
    service: u64,
    line_shift: u32,
    busy_cycles: u64,
}

impl BankArray {
    /// A bank array per `params`, with lines of `1 << line_shift` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `params.l2_banks` is zero.
    pub fn new(params: &MemParams, line_shift: u32) -> Self {
        assert!(params.l2_banks > 0, "need at least one L2 bank");
        BankArray {
            next_free: vec![0; params.l2_banks],
            service: params.bank_service_cycles.max(1),
            line_shift,
            busy_cycles: 0,
        }
    }

    /// The bank index serving `addr` (line-interleaved).
    pub fn bank_of(&self, addr: Addr) -> usize {
        ((addr.0 >> self.line_shift) % self.next_free.len() as u64) as usize
    }

    /// Books the bank for a request arriving at `cycle`; returns the cycle
    /// at which the bank *starts* serving it.
    pub fn book(&mut self, addr: Addr, cycle: u64) -> u64 {
        let bank = self.bank_of(addr);
        let start = cycle.max(self.next_free[bank]);
        if start > cycle {
            self.busy_cycles += start - cycle;
        }
        self.next_free[bank] = start + self.service;
        start
    }

    /// Total cycles requests spent queued behind busy banks (a measure of
    /// L2 contention).
    pub fn queueing_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

/// The main-memory channel: one new access may begin per
/// [`MemParams::mem_issue_interval`] cycles.
#[derive(Debug, Clone)]
pub struct MemBus {
    next_issue: u64,
    interval: u64,
    accesses: u64,
}

impl MemBus {
    /// A memory bus per `params`.
    pub fn new(params: &MemParams) -> Self {
        MemBus { next_issue: 0, interval: params.mem_issue_interval.max(1), accesses: 0 }
    }

    /// Books the channel for an access arriving at `cycle`; returns the
    /// cycle at which the access begins.
    pub fn book(&mut self, cycle: u64) -> u64 {
        let start = cycle.max(self.next_issue);
        self.next_issue = start + self.interval;
        self.accesses += 1;
        start
    }

    /// Total memory accesses issued.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

/// A bounded set of outstanding misses (miss status holding registers).
///
/// A CPU whose MSHRs are all busy cannot issue another miss; the paper's
/// cores have 128 data and 2 instruction miss handlers.
#[derive(Debug, Clone)]
pub struct MshrFile {
    completions: Vec<u64>,
    capacity: usize,
    full_rejections: u64,
}

impl MshrFile {
    /// An MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "need at least one MSHR");
        MshrFile { completions: Vec::with_capacity(capacity), capacity, full_rejections: 0 }
    }

    /// Retires entries whose miss completed at or before `cycle`, then
    /// reports whether a new miss can be accepted.
    pub fn can_accept(&mut self, cycle: u64) -> bool {
        self.completions.retain(|&c| c > cycle);
        let ok = self.completions.len() < self.capacity;
        if !ok {
            self.full_rejections += 1;
        }
        ok
    }

    /// Registers a miss that will complete at `completion_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the file is full — call [`can_accept`](Self::can_accept)
    /// first.
    pub fn add(&mut self, completion_cycle: u64) {
        assert!(self.completions.len() < self.capacity, "MSHR overflow");
        self.completions.push(completion_cycle);
    }

    /// Outstanding misses not yet retired by `can_accept`.
    pub fn outstanding(&self) -> usize {
        self.completions.len()
    }

    /// The earliest fill completing strictly after `cycle`, if any.
    ///
    /// Entries at or before `cycle` are already logically retired (they
    /// are dropped lazily by [`can_accept`](Self::can_accept)) and are
    /// ignored, so this is a sound wake-up candidate for an event-driven
    /// caller.
    pub fn next_completion_after(&self, cycle: u64) -> Option<u64> {
        self.completions.iter().copied().filter(|&c| c > cycle).min()
    }

    /// How often a miss found the file full.
    pub fn full_rejections(&self) -> u64 {
        self.full_rejections
    }

    /// Forgets all outstanding misses (used on pipeline flushes: the
    /// fills still happen but no longer block new requests — a small
    /// simplification that only matters across violations).
    pub fn clear(&mut self) {
        self.completions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MemParams {
        MemParams::paper_default()
    }

    #[test]
    fn banks_are_line_interleaved() {
        let b = BankArray::new(&params(), 5);
        assert_eq!(b.bank_of(Addr(0)), 0);
        assert_eq!(b.bank_of(Addr(32)), 1);
        assert_eq!(b.bank_of(Addr(64)), 2);
        assert_eq!(b.bank_of(Addr(96)), 3);
        assert_eq!(b.bank_of(Addr(128)), 0);
    }

    #[test]
    fn same_bank_requests_queue() {
        let mut b = BankArray::new(&params(), 5);
        assert_eq!(b.book(Addr(0), 100), 100);
        assert_eq!(b.book(Addr(128), 100), 104); // same bank, queued
        assert_eq!(b.book(Addr(32), 100), 100); // different bank
        assert_eq!(b.queueing_cycles(), 4);
    }

    #[test]
    fn idle_bank_serves_immediately() {
        let mut b = BankArray::new(&params(), 5);
        b.book(Addr(0), 0);
        assert_eq!(b.book(Addr(0), 1000), 1000);
    }

    #[test]
    fn mem_bus_paces_accesses() {
        let mut m = MemBus::new(&params());
        assert_eq!(m.book(10), 10);
        assert_eq!(m.book(11), 30);
        assert_eq!(m.book(60), 60);
        assert_eq!(m.accesses(), 3);
    }

    #[test]
    fn mshr_capacity_limits_outstanding_misses() {
        let mut f = MshrFile::new(2);
        assert!(f.can_accept(0));
        f.add(100);
        assert!(f.can_accept(0));
        f.add(200);
        assert!(!f.can_accept(50)); // both still outstanding
        assert!(f.can_accept(150)); // first retired
        assert_eq!(f.outstanding(), 1);
        assert_eq!(f.full_rejections(), 1);
    }

    #[test]
    fn mshr_next_completion_skips_retired_entries() {
        let mut f = MshrFile::new(4);
        f.add(100);
        f.add(40);
        f.add(200);
        assert_eq!(f.next_completion_after(0), Some(40));
        assert_eq!(f.next_completion_after(40), Some(100));
        assert_eq!(f.next_completion_after(150), Some(200));
        assert_eq!(f.next_completion_after(200), None);
    }

    #[test]
    fn mshr_clear_forgets_everything() {
        let mut f = MshrFile::new(1);
        f.add(1000);
        f.clear();
        assert!(f.can_accept(0));
    }

    #[test]
    #[should_panic(expected = "MSHR overflow")]
    fn mshr_overflow_panics() {
        let mut f = MshrFile::new(1);
        f.add(10);
        f.add(20);
    }
}
