//! # tls-obs — observability for the TLS simulator
//!
//! A structured event-tracing and metrics subsystem for the sub-threaded
//! TLS machine: a fixed-capacity ring-buffer [`EventSink`] of compact
//! binary [`Event`] records covering the full speculative lifecycle
//! (spawn, sub-thread checkpoint, violation, rewind, homefree-token
//! handoff, commit, victim-cache spill, latch stall), a sampled
//! time-series [`MetricsRecorder`], and a Perfetto/Chrome `trace_event`
//! exporter ([`perfetto::export`]) whose output opens directly in
//! `ui.perfetto.dev`.
//!
//! The subsystem is strictly *passive*: an [`Observer`] only ever reads
//! simulator state and appends to its own buffers, so a run produces a
//! byte-identical `SimReport` whether observation is on, off, or
//! overflowing (see `tests/observation_neutrality.rs` in the workspace
//! root). When no observer is attached the simulator's hook is a single
//! always-false `Option` check — the disabled path costs nothing.
//!
//! This crate deliberately sits *below* `tls-core` in the dependency
//! graph (it knows nothing about configs or reports) so the simulator
//! can emit into it directly; everything here speaks in primitives:
//! cycles, CPU indices, epoch orders, sub-thread ids, and packed
//! payload words.
//!
//! See `DESIGN.md` §10 for the event taxonomy and the ring-overflow
//! policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
pub mod perfetto;
mod sink;

pub use event::{Event, EventKind, ALL_EVENT_KINDS, NO_PC};
pub use metrics::{CycleClass, MetricsRecorder, MetricsSample, MetricsSeries};
pub use sink::EventSink;

/// Everything one observed run collects: the event ring plus the
/// sampled metrics time series.
///
/// Construct one per run and pass it to the simulator's observed entry
/// point; afterwards, export the ring with [`perfetto::export`] and the
/// series with [`MetricsRecorder::series`].
#[derive(Debug, Clone)]
pub struct Observer {
    /// Ring-buffered lifecycle events (newest kept on overflow).
    pub events: EventSink,
    /// Sampled per-CPU cycle classes and machine-pressure gauges.
    pub metrics: MetricsRecorder,
}

/// Default event-ring capacity: large enough for every event of a
/// paper-scale NEW ORDER run, small enough (~40 MB) to sit in memory.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// Default metrics sampling interval in cycles.
pub const DEFAULT_METRICS_INTERVAL: u64 = 4096;

impl Observer {
    /// An observer with explicit ring capacity and sampling interval.
    pub fn new(cpus: usize, ring_capacity: usize, metrics_interval: u64) -> Self {
        Observer {
            events: EventSink::with_capacity(ring_capacity),
            metrics: MetricsRecorder::new(cpus, metrics_interval),
        }
    }

    /// An observer sized with [`DEFAULT_RING_CAPACITY`] and
    /// [`DEFAULT_METRICS_INTERVAL`].
    pub fn with_defaults(cpus: usize) -> Self {
        Observer::new(cpus, DEFAULT_RING_CAPACITY, DEFAULT_METRICS_INTERVAL)
    }
}
