//! The compact binary event record and its taxonomy.

/// Sentinel for "no PC" in a packed PC payload word (a real
/// `tls_trace::Pc` is a `u32`, but `u32::MAX` is never a valid one —
/// it would need epoch 65535 *and* offset 65535).
pub const NO_PC: u32 = u32::MAX;

/// What happened. One variant per lifecycle transition of the
/// sub-threaded TLS protocol; see each variant for how the [`Event`]
/// payload words `a`/`b` are used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// An epoch was placed on a CPU. `a` = epoch length in ops.
    EpochStart = 0,
    /// A sub-thread checkpoint was taken. `sub` = the new context id,
    /// `a` = op cursor at the boundary.
    SubThreadStart = 1,
    /// Two adjacent sub-thread contexts were merged (context-supply
    /// exhaustion or a chaos forced-merge). `sub` = the current
    /// context id after the merge.
    SubThreadMerge = 2,
    /// A primary (RAW) violation was applied. `sub` = rewind target,
    /// `a` = conflicting line address, `b` = packed PCs: low 32 bits
    /// the exposed load PC, high 32 bits the offending store PC
    /// ([`NO_PC`] when unknown).
    ViolationRaw = 3,
    /// A secondary violation cascaded from an older epoch's rewind.
    /// `sub` = rewind target, `a` = the triggering epoch's order.
    ViolationSecondary = 4,
    /// Speculative state overflowed the L2 + victim cache. `sub` =
    /// rewind target, `a` = displaced line address.
    ViolationOverflow = 5,
    /// A chaos-injected spurious violation. `sub` = rewind target.
    ViolationInjected = 6,
    /// A rewind ran. `sub` = target sub-thread, `a` = discarded
    /// (failed) cycles, `b` = ops rewound.
    Rewind = 7,
    /// The homefree token moved on after a commit. `epoch` = the new
    /// token holder's order, `a` = total epochs committed so far.
    TokenHandoff = 8,
    /// An epoch committed. `a` = its op count.
    Commit = 9,
    /// Speculative line(s) were displaced into the victim cache by
    /// this CPU's accesses this cycle. `a` = how many.
    VictimSpill = 10,
    /// A latch acquire blocked (start of a stall episode). `a` = the
    /// latch id.
    LatchStall = 11,
    /// Synthetic: idle-cycle fast-forward skipped a provably-quiescent
    /// span. `cycle` = span start, `a` = span end (exclusive). The
    /// machine-wide record that keeps timelines truthful — every CPU
    /// repeated its previous cycle category for the whole span.
    IdleSpan = 12,
    /// The forward-progress watchdog flagged a violation storm: this
    /// epoch rewound `a` consecutive times without any epoch committing
    /// in between. `sub` = rewind target of the tripping rewind, `b` =
    /// packed PCs of the most recent RAW conflict ([`NO_PC`] when the
    /// storm was not RAW-driven).
    Livelock = 13,
    /// A buffer-pool frame was evicted. `a` = the evicted region's base
    /// address, `b` = 1 if the eviction flushed a dirty page first.
    /// Emitted by the MiniDB pager (`cycle` is its event sequence
    /// number, not a simulated cycle — pager events are recorded at
    /// workload-recording time, before simulation).
    FrameEvict = 14,
    /// A dirty page was written to the simulated disk. `a` = region
    /// base address, `b` = the page LSN stamped into the envelope.
    FrameFlush = 15,
    /// Recovery (or a live read-repair after a checksum/LSN mismatch)
    /// replayed log state onto a page. `a` = region base address,
    /// `b` = the LSN recovered to.
    RecoveryReplay = 16,
    /// A RAW violation was suppressed because every exposed load on the
    /// conflicting line carried a value prediction (settled at commit).
    /// `sub` = the sub-thread the violation would have rewound to, `a` =
    /// conflicting line address, `b` = packed load/store PCs as in
    /// [`EventKind::ViolationRaw`].
    ValuePredicted = 17,
    /// A value prediction validated wrong at commit time; the epoch
    /// rewinds instead of committing. `sub` = rewind target, `a` = the
    /// mispredicted line address, `b` = packed PCs (store [`NO_PC`]).
    ValueMispredict = 18,
    /// A CPU spent this cycle stalled on a TSO store-buffer drain.
    /// Emitted once at the *start* of each stall episode (not per
    /// cycle). `a` = buffered entries at stall start, `b` = 1 when the
    /// stall came from a full buffer, 2 from a load-forwarding
    /// conflict, 3 from an ordering-point flush.
    DrainStall = 19,
    /// The commit-serializability auditor found a happens-before cycle
    /// or a store-flow violation. `a` = the implicated line address (0
    /// when not line-specific), `b` = total breaches so far.
    SerializabilityBreach = 20,
}

/// Every event kind, in discriminant order (stable for count tables).
pub const ALL_EVENT_KINDS: [EventKind; 21] = [
    EventKind::EpochStart,
    EventKind::SubThreadStart,
    EventKind::SubThreadMerge,
    EventKind::ViolationRaw,
    EventKind::ViolationSecondary,
    EventKind::ViolationOverflow,
    EventKind::ViolationInjected,
    EventKind::Rewind,
    EventKind::TokenHandoff,
    EventKind::Commit,
    EventKind::VictimSpill,
    EventKind::LatchStall,
    EventKind::IdleSpan,
    EventKind::Livelock,
    EventKind::FrameEvict,
    EventKind::FrameFlush,
    EventKind::RecoveryReplay,
    EventKind::ValuePredicted,
    EventKind::ValueMispredict,
    EventKind::DrainStall,
    EventKind::SerializabilityBreach,
];

impl EventKind {
    /// Stable snake_case label (JSON field names, count tables).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::EpochStart => "epoch_start",
            EventKind::SubThreadStart => "subthread_start",
            EventKind::SubThreadMerge => "subthread_merge",
            EventKind::ViolationRaw => "violation_raw",
            EventKind::ViolationSecondary => "violation_secondary",
            EventKind::ViolationOverflow => "violation_overflow",
            EventKind::ViolationInjected => "violation_injected",
            EventKind::Rewind => "rewind",
            EventKind::TokenHandoff => "token_handoff",
            EventKind::Commit => "commit",
            EventKind::VictimSpill => "victim_spill",
            EventKind::LatchStall => "latch_stall",
            EventKind::IdleSpan => "idle_span",
            EventKind::Livelock => "livelock",
            EventKind::FrameEvict => "frame_evict",
            EventKind::FrameFlush => "frame_flush",
            EventKind::RecoveryReplay => "recovery_replay",
            EventKind::ValuePredicted => "value_predicted",
            EventKind::ValueMispredict => "value_mispredict",
            EventKind::DrainStall => "drain_stall",
            EventKind::SerializabilityBreach => "serializability_breach",
        }
    }

    /// Is this a violation that actually rewound a thread? (A
    /// [`EventKind::ValueMispredict`] rewinds; a suppressed-and-settled
    /// [`EventKind::ValuePredicted`] does not.)
    pub fn is_violation(self) -> bool {
        matches!(
            self,
            EventKind::ViolationRaw
                | EventKind::ViolationSecondary
                | EventKind::ViolationOverflow
                | EventKind::ViolationInjected
                | EventKind::ValueMispredict
        )
    }
}

/// One traced occurrence: a fixed-size, copyable record (40 bytes) so a
/// million of them ring-buffer without allocation or indirection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle at which the event was emitted.
    pub cycle: u64,
    /// First payload word; meaning depends on [`EventKind`].
    pub a: u64,
    /// Second payload word; meaning depends on [`EventKind`].
    pub b: u64,
    /// Logical epoch order, or `u32::MAX` when no epoch is involved.
    pub epoch: u32,
    /// What happened.
    pub kind: EventKind,
    /// CPU index, or [`Event::NO_CPU`] for machine-wide events.
    pub cpu: u8,
    /// Sub-thread context id (0 when not meaningful).
    pub sub: u8,
}

impl Event {
    /// `cpu` value for machine-wide events ([`EventKind::IdleSpan`]).
    pub const NO_CPU: u8 = u8::MAX;

    /// Packs an optional load PC and an optional store PC into one
    /// payload word ([`NO_PC`] marks absence).
    pub fn pack_pcs(load: Option<u32>, store: Option<u32>) -> u64 {
        let lo = load.unwrap_or(NO_PC) as u64;
        let hi = store.unwrap_or(NO_PC) as u64;
        lo | (hi << 32)
    }

    /// Inverse of [`Event::pack_pcs`].
    pub fn unpack_pcs(b: u64) -> (Option<u32>, Option<u32>) {
        let lo = (b & 0xFFFF_FFFF) as u32;
        let hi = (b >> 32) as u32;
        ((lo != NO_PC).then_some(lo), (hi != NO_PC).then_some(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcs_round_trip() {
        for (l, s) in [(None, None), (Some(7u32), None), (None, Some(9)), (Some(1), Some(2))] {
            assert_eq!(Event::unpack_pcs(Event::pack_pcs(l, s)), (l, s));
        }
    }

    #[test]
    fn kinds_are_distinct_and_labelled() {
        let mut labels: Vec<&str> = ALL_EVENT_KINDS.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ALL_EVENT_KINDS.len());
    }
}
