//! The fixed-capacity event ring buffer.

use crate::event::{Event, ALL_EVENT_KINDS};

/// A fixed-capacity ring buffer of [`Event`]s.
///
/// Capacity is fixed at construction and never reallocated, so a
/// `push` in the simulator's hot loop is an index increment and a
/// 40-byte store. On overflow the *oldest* record is overwritten — the
/// tail of a run (the part that explains how it ended) is always
/// retained — and the per-kind counters keep counting, so aggregate
/// truth survives even when individual records do not.
#[derive(Debug, Clone)]
pub struct EventSink {
    buf: Vec<Event>,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    dropped: u64,
    counts: [u64; ALL_EVENT_KINDS.len()],
}

impl EventSink {
    /// A sink holding at most `capacity` records (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventSink {
            buf: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
            counts: [0; ALL_EVENT_KINDS.len()],
        }
    }

    /// Appends one record, overwriting the oldest when full.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        self.counts[ev.kind as usize] += 1;
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.capacity();
            self.dropped += 1;
        }
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records ever pushed of `kind` (overflow-proof).
    pub fn count(&self, kind: crate::EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Records in emission order, oldest surviving record first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (older, newer) = self.buf.split_at(self.head);
        newer.iter().chain(older.iter())
    }

    /// The surviving records as an owned, emission-ordered vector.
    pub fn events(&self) -> Vec<Event> {
        self.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(cycle: u64) -> Event {
        Event { cycle, a: 0, b: 0, epoch: 0, kind: EventKind::Commit, cpu: 0, sub: 0 }
    }

    #[test]
    fn keeps_newest_on_overflow() {
        let mut s = EventSink::with_capacity(4);
        for c in 0..10u64 {
            s.push(ev(c));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.dropped(), 6);
        assert_eq!(s.count(EventKind::Commit), 10);
        let cycles: Vec<u64> = s.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest dropped, order kept");
    }

    #[test]
    fn no_overflow_below_capacity() {
        let mut s = EventSink::with_capacity(8);
        for c in 0..5u64 {
            s.push(ev(c));
        }
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.events().len(), 5);
        assert_eq!(s.capacity(), 8);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut s = EventSink::with_capacity(0);
        s.push(ev(1));
        s.push(ev(2));
        assert_eq!(s.capacity(), 1);
        assert_eq!(s.events()[0].cycle, 2);
    }
}
