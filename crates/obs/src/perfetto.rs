//! Perfetto / Chrome `trace_event` JSON export.
//!
//! [`export`] turns a run's event stream into a JSON document that
//! opens directly in `ui.perfetto.dev` (or `chrome://tracing`). Layout:
//!
//! * one *process* per run, named after the program;
//! * two *tracks* (threads) per CPU — `cpu N` carries the epoch slice
//!   with its sub-thread slices nested inside plus instant events
//!   (violations, token handoffs, spills, latch stalls), and
//!   `cpu N ✗rewound` carries the spans a rewind discarded, visually
//!   separated so wasted work is obvious at a glance;
//! * one `machine` track carrying the synthetic fast-forward spans
//!   (cycles the simulator proved quiescent and skipped).
//!
//! Timestamps are simulated cycles mapped 1:1 onto trace microseconds.
//!
//! The exporter is a small state machine over the (possibly truncated)
//! ring: an epoch whose `EpochStart` was overwritten is synthesized at
//! the first event that mentions it, and slices still open when the
//! stream ends are closed at the run's final cycle — so an overflowing
//! ring degrades to a truncated-but-valid timeline, never a broken one.

use crate::event::{Event, EventKind};

/// Identification for one exported run.
#[derive(Debug, Clone)]
pub struct TraceMeta {
    /// Program name (becomes the Perfetto process name).
    pub program: String,
    /// CPU count of the simulated machine (fixes the track layout).
    pub cpus: usize,
    /// Final cycle of the run; closes any still-open slice.
    pub total_cycles: u64,
}

/// A closed sub-thread span awaiting its epoch's flush.
#[derive(Debug, Clone, Copy)]
struct SubSlice {
    sub: u8,
    start: u64,
    end: u64,
}

/// Reconstruction state for one CPU's currently-running epoch.
#[derive(Debug, Default)]
struct OpenEpoch {
    order: u32,
    start: u64,
    /// Closed sub-thread spans that are still live (will commit).
    kept: Vec<SubSlice>,
    /// Closed sub-thread spans a rewind discarded.
    rewound: Vec<SubSlice>,
    /// The sub-thread currently executing: (id, span start).
    open_sub: Option<(u8, u64)>,
}

/// JSON writer for the `traceEvents` array.
struct W {
    out: String,
    first: bool,
}

impl W {
    fn new() -> Self {
        W { out: String::with_capacity(1 << 16), first: true }
    }

    /// Starts one event object; the caller appends `"key":value` pairs
    /// via the `push_*` helpers and ends with [`W::close`].
    fn open(&mut self) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str("\n{");
    }

    fn field_str(&mut self, key: &str, val: &str) {
        self.key(key);
        serde::write_json_string(val, &mut self.out);
    }

    fn field_num(&mut self, key: &str, val: u64) {
        self.key(key);
        self.out.push_str(&val.to_string());
    }

    /// Appends a raw, pre-serialized JSON value.
    fn field_raw(&mut self, key: &str, json: &str) {
        self.key(key);
        self.out.push_str(json);
    }

    fn key(&mut self, key: &str) {
        if !self.out.ends_with('{') {
            self.out.push(',');
        }
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\":");
    }

    fn close(&mut self) {
        self.out.push('}');
    }
}

fn exec_tid(cpu: usize) -> u64 {
    (cpu as u64) * 2
}

fn rewind_tid(cpu: usize) -> u64 {
    (cpu as u64) * 2 + 1
}

fn machine_tid(cpus: usize) -> u64 {
    (cpus as u64) * 2
}

/// Emits one complete (`ph:"X"`) slice.
fn slice(w: &mut W, tid: u64, name: &str, ts: u64, dur: u64, args: Option<&str>) {
    w.open();
    w.field_str("name", name);
    w.field_str("ph", "X");
    w.field_num("ts", ts);
    w.field_num("dur", dur.max(1));
    w.field_num("pid", 0);
    w.field_num("tid", tid);
    if let Some(a) = args {
        w.field_raw("args", a);
    }
    w.close();
}

/// Emits one thread-scoped instant (`ph:"i"`) event.
fn instant(w: &mut W, tid: u64, name: &str, ts: u64, args: Option<&str>) {
    w.open();
    w.field_str("name", name);
    w.field_str("ph", "i");
    w.field_str("s", "t");
    w.field_num("ts", ts);
    w.field_num("pid", 0);
    w.field_num("tid", tid);
    if let Some(a) = args {
        w.field_raw("args", a);
    }
    w.close();
}

/// Emits one `ph:"M"` metadata record.
fn metadata(w: &mut W, name: &str, tid: Option<u64>, args: &str) {
    w.open();
    w.field_str("name", name);
    w.field_str("ph", "M");
    w.field_num("pid", 0);
    if let Some(t) = tid {
        w.field_num("tid", t);
    }
    w.field_raw("args", args);
    w.close();
}

fn pc_json(pc: Option<u32>) -> String {
    match pc {
        Some(p) => format!("\"{:#x}\"", p),
        None => "\"?\"".to_string(),
    }
}

impl OpenEpoch {
    fn begin(order: u32, cycle: u64) -> Self {
        OpenEpoch {
            order,
            start: cycle,
            kept: Vec::new(),
            rewound: Vec::new(),
            open_sub: Some((0, cycle)),
        }
    }

    /// Closes the open sub-thread span at `cycle` into `kept` (or
    /// `rewound`); zero-length spans are dropped.
    fn close_sub(&mut self, cycle: u64, discarded: bool) {
        if let Some((sub, start)) = self.open_sub.take() {
            if cycle > start {
                let s = SubSlice { sub, start, end: cycle };
                if discarded {
                    self.rewound.push(s);
                } else {
                    self.kept.push(s);
                }
            }
        }
    }

    /// Flushes the epoch as slices ending at `end`.
    fn flush(mut self, w: &mut W, cpu: usize, end: u64) {
        self.close_sub(end, false);
        let end = end.max(self.start + 1);
        slice(
            w,
            exec_tid(cpu),
            &format!("epoch {}", self.order),
            self.start,
            end - self.start,
            None,
        );
        for s in &self.kept {
            let e = s.end.min(end);
            slice(
                w,
                exec_tid(cpu),
                &format!("sub {}", s.sub),
                s.start,
                e.saturating_sub(s.start),
                None,
            );
        }
        for s in &self.rewound {
            let e = s.end.min(end);
            slice(
                w,
                rewind_tid(cpu),
                &format!("rewound sub {}", s.sub),
                s.start,
                e.saturating_sub(s.start),
                None,
            );
        }
    }
}

/// Exports `events` (emission-ordered, e.g. [`EventSink::events`]
/// (crate::EventSink::events)) as a Chrome `trace_event` JSON document.
pub fn export(meta: &TraceMeta, events: impl IntoIterator<Item = Event>) -> String {
    let mut w = W::new();
    metadata(&mut w, "process_name", None, &{
        let mut a = String::from("{\"name\":");
        serde::write_json_string(&format!("tls-sim: {}", meta.program), &mut a);
        a.push('}');
        a
    });
    for cpu in 0..meta.cpus {
        let exec = exec_tid(cpu);
        let rew = rewind_tid(cpu);
        metadata(&mut w, "thread_name", Some(exec), &format!("{{\"name\":\"cpu {cpu}\"}}"));
        metadata(&mut w, "thread_sort_index", Some(exec), &format!("{{\"sort_index\":{exec}}}"));
        metadata(&mut w, "thread_name", Some(rew), &format!("{{\"name\":\"cpu {cpu} ✗rewound\"}}"));
        metadata(&mut w, "thread_sort_index", Some(rew), &format!("{{\"sort_index\":{rew}}}"));
    }
    let mtid = machine_tid(meta.cpus);
    metadata(&mut w, "thread_name", Some(mtid), "{\"name\":\"machine\"}");
    metadata(&mut w, "thread_sort_index", Some(mtid), &format!("{{\"sort_index\":{mtid}}}"));

    let mut open: Vec<Option<OpenEpoch>> = (0..meta.cpus).map(|_| None).collect();
    // An epoch whose start record was overwritten by ring overflow is
    // synthesized at the first surviving event that mentions it.
    let ensure_open = |open: &mut Vec<Option<OpenEpoch>>, ev: &Event| {
        let cpu = ev.cpu as usize;
        let stale = match &open[cpu] {
            Some(e) => ev.epoch != u32::MAX && e.order != ev.epoch,
            None => true,
        };
        if stale {
            if let Some(prev) = open[cpu].take() {
                // Never observed committing — close it where the
                // successor shows up.
                return Some((prev, cpu));
            }
            open[cpu] = Some(OpenEpoch::begin(ev.epoch, ev.cycle));
            return None;
        }
        None
    };

    for ev in events {
        let cpu = ev.cpu as usize;
        let machine_wide = matches!(
            ev.kind,
            EventKind::IdleSpan
                | EventKind::FrameEvict
                | EventKind::FrameFlush
                | EventKind::RecoveryReplay
        );
        if !machine_wide && cpu >= meta.cpus {
            continue; // corrupt record; skip rather than panic
        }
        match ev.kind {
            EventKind::EpochStart => {
                if let Some(prev) = open[cpu].take() {
                    prev.flush(&mut w, cpu, ev.cycle);
                }
                open[cpu] = Some(OpenEpoch::begin(ev.epoch, ev.cycle));
            }
            EventKind::SubThreadStart => {
                if let Some((prev, pcpu)) = ensure_open(&mut open, &ev) {
                    prev.flush(&mut w, pcpu, ev.cycle);
                    open[cpu] = Some(OpenEpoch::begin(ev.epoch, ev.cycle));
                }
                let e = open[cpu].as_mut().expect("ensured");
                e.close_sub(ev.cycle, false);
                e.open_sub = Some((ev.sub, ev.cycle));
            }
            EventKind::Rewind => {
                if let Some((prev, pcpu)) = ensure_open(&mut open, &ev) {
                    prev.flush(&mut w, pcpu, ev.cycle);
                    open[cpu] = Some(OpenEpoch::begin(ev.epoch, ev.cycle));
                }
                let e = open[cpu].as_mut().expect("ensured");
                // Everything from the target checkpoint on is discarded:
                // the open span and every kept span at or past the target.
                e.close_sub(ev.cycle, true);
                let target = ev.sub;
                let (kept, gone): (Vec<_>, Vec<_>) = e.kept.drain(..).partition(|s| s.sub < target);
                e.kept = kept;
                e.rewound.extend(gone);
                e.open_sub = Some((target, ev.cycle));
                instant(
                    &mut w,
                    exec_tid(cpu),
                    &format!("rewind → sub {target}"),
                    ev.cycle,
                    Some(&format!("{{\"failed_cycles\":{},\"ops_rewound\":{}}}", ev.a, ev.b)),
                );
            }
            EventKind::Commit => {
                if let Some(e) = open[cpu].take() {
                    e.flush(&mut w, cpu, ev.cycle);
                } else {
                    // Start record lost to overflow: represent the epoch
                    // by a point-sized slice so the commit still shows.
                    OpenEpoch::begin(ev.epoch, ev.cycle.saturating_sub(1))
                        .flush(&mut w, cpu, ev.cycle);
                }
            }
            EventKind::ViolationRaw => {
                let (load, store) = Event::unpack_pcs(ev.b);
                instant(
                    &mut w,
                    exec_tid(cpu),
                    "RAW violation",
                    ev.cycle,
                    Some(&format!(
                        "{{\"line\":\"{:#x}\",\"load_pc\":{},\"store_pc\":{},\"rewind_to_sub\":{}}}",
                        ev.a,
                        pc_json(load),
                        pc_json(store),
                        ev.sub
                    )),
                );
            }
            EventKind::ViolationSecondary => {
                instant(
                    &mut w,
                    exec_tid(cpu),
                    "secondary violation",
                    ev.cycle,
                    Some(&format!(
                        "{{\"triggered_by_epoch\":{},\"rewind_to_sub\":{}}}",
                        ev.a, ev.sub
                    )),
                );
            }
            EventKind::ViolationOverflow => {
                instant(
                    &mut w,
                    exec_tid(cpu),
                    "overflow violation",
                    ev.cycle,
                    Some(&format!("{{\"line\":\"{:#x}\",\"rewind_to_sub\":{}}}", ev.a, ev.sub)),
                );
            }
            EventKind::ViolationInjected => {
                instant(
                    &mut w,
                    exec_tid(cpu),
                    "injected violation",
                    ev.cycle,
                    Some(&format!("{{\"rewind_to_sub\":{}}}", ev.sub)),
                );
            }
            EventKind::ValuePredicted => {
                let (load, store) = Event::unpack_pcs(ev.b);
                instant(
                    &mut w,
                    exec_tid(cpu),
                    "RAW suppressed (value predicted)",
                    ev.cycle,
                    Some(&format!(
                        "{{\"line\":\"{:#x}\",\"load_pc\":{},\"store_pc\":{},\"would_rewind_to_sub\":{}}}",
                        ev.a,
                        pc_json(load),
                        pc_json(store),
                        ev.sub
                    )),
                );
            }
            EventKind::ValueMispredict => {
                let (load, _) = Event::unpack_pcs(ev.b);
                instant(
                    &mut w,
                    exec_tid(cpu),
                    "value mispredict",
                    ev.cycle,
                    Some(&format!(
                        "{{\"line\":\"{:#x}\",\"load_pc\":{},\"rewind_to_sub\":{}}}",
                        ev.a,
                        pc_json(load),
                        ev.sub
                    )),
                );
            }
            EventKind::TokenHandoff => {
                instant(
                    &mut w,
                    exec_tid(cpu),
                    &format!("homefree → epoch {}", ev.epoch),
                    ev.cycle,
                    Some(&format!("{{\"committed\":{}}}", ev.a)),
                );
            }
            EventKind::VictimSpill => {
                instant(
                    &mut w,
                    exec_tid(cpu),
                    "victim spill",
                    ev.cycle,
                    Some(&format!("{{\"lines\":{}}}", ev.a)),
                );
            }
            EventKind::LatchStall => {
                instant(
                    &mut w,
                    exec_tid(cpu),
                    "latch stall",
                    ev.cycle,
                    Some(&format!("{{\"latch\":{}}}", ev.a)),
                );
            }
            EventKind::SubThreadMerge => {
                instant(&mut w, exec_tid(cpu), "sub-thread merge", ev.cycle, None);
            }
            EventKind::Livelock => {
                let (load, store) = Event::unpack_pcs(ev.b);
                instant(
                    &mut w,
                    exec_tid(cpu),
                    &format!("livelock: epoch {} storming", ev.epoch),
                    ev.cycle,
                    Some(&format!(
                        "{{\"storm_len\":{},\"rewind_to_sub\":{},\"load_pc\":{},\"store_pc\":{}}}",
                        ev.a,
                        ev.sub,
                        pc_json(load),
                        pc_json(store)
                    )),
                );
            }
            EventKind::IdleSpan => {
                slice(
                    &mut w,
                    mtid,
                    "fast-forward",
                    ev.cycle,
                    ev.a.saturating_sub(ev.cycle),
                    Some(&format!("{{\"skipped_cycles\":{}}}", ev.a.saturating_sub(ev.cycle))),
                );
            }
            EventKind::FrameEvict => {
                instant(
                    &mut w,
                    mtid,
                    "frame evict",
                    ev.cycle,
                    Some(&format!("{{\"region\":\"{:#x}\",\"flushed\":{}}}", ev.a, ev.b)),
                );
            }
            EventKind::FrameFlush => {
                instant(
                    &mut w,
                    mtid,
                    "frame flush",
                    ev.cycle,
                    Some(&format!("{{\"region\":\"{:#x}\",\"page_lsn\":{}}}", ev.a, ev.b)),
                );
            }
            EventKind::RecoveryReplay => {
                instant(
                    &mut w,
                    mtid,
                    "recovery replay",
                    ev.cycle,
                    Some(&format!("{{\"region\":\"{:#x}\",\"to_lsn\":{}}}", ev.a, ev.b)),
                );
            }
            EventKind::DrainStall => {
                let cause = match ev.b {
                    1 => "full buffer",
                    2 => "forward conflict",
                    3 => "ordering point",
                    _ => "unknown",
                };
                instant(
                    &mut w,
                    exec_tid(cpu),
                    "drain stall",
                    ev.cycle,
                    Some(&format!("{{\"buffered\":{},\"cause\":\"{cause}\"}}", ev.a)),
                );
            }
            EventKind::SerializabilityBreach => {
                instant(
                    &mut w,
                    exec_tid(cpu),
                    "SERIALIZABILITY BREACH",
                    ev.cycle,
                    Some(&format!("{{\"line\":\"{:#x}\",\"breaches\":{}}}", ev.a, ev.b)),
                );
            }
        }
    }
    for (cpu, e) in open.into_iter().enumerate() {
        if let Some(e) = e {
            let end = meta.total_cycles.max(e.start + 1);
            e.flush(&mut w, cpu, end);
        }
    }

    let mut doc = String::with_capacity(w.out.len() + 64);
    doc.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    doc.push_str(&w.out);
    doc.push_str("\n]}\n");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;
    use serde::Value;

    fn ev(cycle: u64, kind: EventKind, cpu: u8, epoch: u32, sub: u8, a: u64, b: u64) -> Event {
        Event { cycle, a, b, epoch, kind, cpu, sub }
    }

    fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
        v.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn get_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
        get(v, key).and_then(|v| v.as_str())
    }

    fn get_u64(v: &Value, key: &str) -> Option<u64> {
        match get(v, key) {
            Some(Value::Int(i)) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    #[test]
    fn exports_valid_json_with_nested_slices() {
        let meta = TraceMeta { program: "p\"q".into(), cpus: 2, total_cycles: 100 };
        let events = vec![
            ev(0, EventKind::EpochStart, 0, 0, 0, 10, 0),
            ev(0, EventKind::EpochStart, 1, 1, 0, 10, 0),
            ev(5, EventKind::SubThreadStart, 1, 1, 1, 3, 0),
            ev(8, EventKind::ViolationRaw, 1, 1, 1, 0x4000, Event::pack_pcs(Some(3), Some(9))),
            ev(8, EventKind::Rewind, 1, 1, 1, 3, 2),
            ev(20, EventKind::Commit, 0, 0, 0, 10, 0),
            ev(20, EventKind::TokenHandoff, 0, 1, 0, 1, 0),
            ev(40, EventKind::IdleSpan, Event::NO_CPU, u32::MAX, 0, 60, 0),
            ev(60, EventKind::Commit, 1, 1, 1, 10, 0),
        ];
        let json = export(&meta, events);
        let v = serde::parse(&json).expect("exported JSON parses");
        let tes = get(&v, "traceEvents").and_then(|t| t.as_array()).expect("traceEvents array");
        assert!(tes.len() > 10);
        // The rewound span of cpu 1 sub 1 lands on the rewind track.
        let rewound = tes
            .iter()
            .any(|e| get_str(e, "name") == Some("rewound sub 1") && get_u64(e, "tid") == Some(3));
        assert!(rewound, "rewound span missing: {json}");
        // Sub slices nest inside their epoch slice on the same track.
        let mut subs_checked = 0;
        for e in tes {
            let name = get_str(e, "name").unwrap_or("");
            if get_str(e, "ph") == Some("X") && name.starts_with("sub ") {
                let tid = get_u64(e, "tid").unwrap();
                let ts = get_u64(e, "ts").unwrap();
                let dur = get_u64(e, "dur").unwrap();
                let parent = tes.iter().any(|p| {
                    get_str(p, "ph") == Some("X")
                        && get_str(p, "name").is_some_and(|n| n.starts_with("epoch "))
                        && get_u64(p, "tid") == Some(tid)
                        && get_u64(p, "ts").unwrap() <= ts
                        && get_u64(p, "ts").unwrap() + get_u64(p, "dur").unwrap() >= ts + dur
                });
                assert!(parent, "sub slice not nested: {name} ts={ts}");
                subs_checked += 1;
            }
        }
        assert!(subs_checked > 0, "no sub slices exported");
    }

    #[test]
    fn tolerates_truncated_streams() {
        let meta = TraceMeta { program: "t".into(), cpus: 1, total_cycles: 50 };
        // No EpochStart (lost to ring overflow), open at end of stream.
        let events = vec![
            ev(10, EventKind::SubThreadStart, 0, 4, 1, 0, 0),
            ev(30, EventKind::Commit, 0, 4, 1, 0, 0),
            ev(35, EventKind::EpochStart, 0, 5, 0, 0, 0),
        ];
        let json = export(&meta, events);
        let v = serde::parse(&json).expect("parses");
        let tes = get(&v, "traceEvents").and_then(|t| t.as_array()).unwrap();
        let epochs: Vec<&str> = tes
            .iter()
            .filter(|e| get_str(e, "ph") == Some("X"))
            .filter_map(|e| get_str(e, "name"))
            .filter(|n| n.starts_with("epoch "))
            .collect();
        assert_eq!(epochs, vec!["epoch 4", "epoch 5"]);
    }
}
