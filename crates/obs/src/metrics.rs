//! Sampled time-series metrics for one observed run.

use serde::Serialize;

/// Dispatch-time classification of one CPU-cycle, mirroring the
/// simulator's accounting categories. `Failed` never appears here —
/// failure is assigned retroactively by a rewind — so discarded work is
/// tracked separately via [`MetricsRecorder::note_failed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleClass {
    /// Executing instructions.
    Busy,
    /// Head-of-ROB memory stall.
    CacheMiss,
    /// Blocked on a latch.
    Latch,
    /// Waiting on the homefree token (or a predictor synchronization).
    Sync,
    /// No epoch to run.
    Idle,
}

/// One sample: cumulative per-CPU cycle classes plus point-in-time
/// machine-pressure gauges.
///
/// The per-CPU vectors are *cumulative* counts since cycle 0, so any
/// two samples subtract into an interval breakdown. `busy` includes
/// work later discarded by a violation; `failed` is the running total
/// of discarded cycles (credited at rewind time), matching how the
/// simulator itself re-classifies retroactively.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSample {
    /// Cycle the sample was taken at.
    pub cycle: u64,
    /// Per-CPU cycles spent executing.
    pub busy: Vec<u64>,
    /// Per-CPU cycles stalled on the memory hierarchy.
    pub cache_miss: Vec<u64>,
    /// Per-CPU cycles blocked on latches.
    pub latch: Vec<u64>,
    /// Per-CPU cycles waiting to commit or synchronized.
    pub sync: Vec<u64>,
    /// Per-CPU cycles with no epoch scheduled.
    pub idle: Vec<u64>,
    /// Per-CPU cycles discarded by rewinds so far.
    pub failed: Vec<u64>,
    /// Per-CPU reorder-buffer occupancy (point-in-time).
    pub rob: Vec<u64>,
    /// Speculative lines resident in the shared L2 (point-in-time).
    pub spec_lines: u64,
    /// Lines resident in the victim cache (point-in-time).
    pub victim_lines: u64,
    /// Outstanding data-MSHR entries across all CPUs (point-in-time).
    pub mshr_inflight: u64,
}

/// The serialized product of a recorder: identification plus samples.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSeries {
    /// The observed program's name.
    pub program: String,
    /// CPU count of the simulated machine.
    pub cpus: usize,
    /// Nominal cycles between samples (fast-forwarded quiescent spans
    /// may cross several boundaries and yield a single sample — nothing
    /// measurable changes inside such a span).
    pub interval: u64,
    /// The samples, in cycle order.
    pub samples: Vec<MetricsSample>,
}

/// Accumulates per-CPU cycle classes and takes periodic samples.
///
/// The simulator ticks this once per CPU per simulated cycle while
/// observing (bulk-ticked across fast-forwarded spans) and calls
/// [`sample`](MetricsRecorder::sample) when
/// [`due`](MetricsRecorder::due) says a boundary was crossed.
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    interval: u64,
    next_due: u64,
    busy: Vec<u64>,
    cache_miss: Vec<u64>,
    latch: Vec<u64>,
    sync: Vec<u64>,
    idle: Vec<u64>,
    failed: Vec<u64>,
    samples: Vec<MetricsSample>,
}

impl MetricsRecorder {
    /// A recorder for `cpus` CPUs sampling every `interval` cycles
    /// (min 1).
    pub fn new(cpus: usize, interval: u64) -> Self {
        let interval = interval.max(1);
        MetricsRecorder {
            interval,
            next_due: interval,
            busy: vec![0; cpus],
            cache_miss: vec![0; cpus],
            latch: vec![0; cpus],
            sync: vec![0; cpus],
            idle: vec![0; cpus],
            failed: vec![0; cpus],
            samples: Vec::new(),
        }
    }

    /// Credits one cycle of `class` to `cpu`.
    #[inline]
    pub fn tick(&mut self, cpu: usize, class: CycleClass) {
        self.tick_n(cpu, class, 1);
    }

    /// Credits `n` cycles of `class` to `cpu` (fast-forwarded spans).
    #[inline]
    pub fn tick_n(&mut self, cpu: usize, class: CycleClass, n: u64) {
        let bucket = match class {
            CycleClass::Busy => &mut self.busy,
            CycleClass::CacheMiss => &mut self.cache_miss,
            CycleClass::Latch => &mut self.latch,
            CycleClass::Sync => &mut self.sync,
            CycleClass::Idle => &mut self.idle,
        };
        bucket[cpu] += n;
    }

    /// Credits `cycles` discarded by a rewind on `cpu`.
    pub fn note_failed(&mut self, cpu: usize, cycles: u64) {
        self.failed[cpu] += cycles;
    }

    /// Has the sampling boundary been crossed?
    #[inline]
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_due
    }

    /// Takes one sample at `cycle` with the given point-in-time gauges
    /// and advances the next boundary past `cycle`.
    pub fn sample(
        &mut self,
        cycle: u64,
        rob: Vec<u64>,
        spec_lines: u64,
        victim_lines: u64,
        mshr_inflight: u64,
    ) {
        self.samples.push(MetricsSample {
            cycle,
            busy: self.busy.clone(),
            cache_miss: self.cache_miss.clone(),
            latch: self.latch.clone(),
            sync: self.sync.clone(),
            idle: self.idle.clone(),
            failed: self.failed.clone(),
            rob,
            spec_lines,
            victim_lines,
            mshr_inflight,
        });
        self.next_due = cycle - cycle % self.interval + self.interval;
    }

    /// Samples taken so far.
    pub fn samples(&self) -> &[MetricsSample] {
        &self.samples
    }

    /// Packages the samples for serialization.
    pub fn series(&self, program: &str) -> MetricsSeries {
        MetricsSeries {
            program: program.to_string(),
            cpus: self.busy.len(),
            interval: self.interval,
            samples: self.samples.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_cumulative() {
        let mut m = MetricsRecorder::new(2, 100);
        m.tick_n(0, CycleClass::Busy, 60);
        m.tick_n(1, CycleClass::Idle, 60);
        assert!(!m.due(99));
        assert!(m.due(100));
        m.sample(100, vec![3, 0], 5, 2, 1);
        m.tick_n(0, CycleClass::CacheMiss, 100);
        m.note_failed(0, 40);
        assert!(m.due(207));
        m.sample(207, vec![0, 0], 0, 0, 0);
        assert!(!m.due(299));
        assert!(m.due(300));
        let s = m.series("p");
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.samples[0].busy, vec![60, 0]);
        assert_eq!(s.samples[1].cache_miss, vec![100, 0]);
        assert_eq!(s.samples[1].failed, vec![40, 0]);
        assert_eq!(s.samples[0].spec_lines, 5);
    }
}
