//! Observation is strictly passive: for any program, machine
//! configuration and ring capacity, a run with an [`Observer`] attached
//! must produce a byte-identical [`SimReport`] to an unobserved run —
//! including when the event ring overflows and starts overwriting its
//! oldest records. A second battery checks the Perfetto exporter's
//! output: it must parse as JSON, and every sub-thread slice must nest
//! inside its epoch's span on the same track.

use subthreads::core::synthetic::{
    independent, latched_rmw, pipeline, shared_dependences, Dependence,
};
use subthreads::core::{
    CmpConfig, CmpSimulator, ExhaustionPolicy, Observer, RunOptions, SecondaryPolicy,
    SpacingPolicy, SubThreadConfig,
};
use subthreads::obs::perfetto::{self, TraceMeta};
use subthreads::obs::EventKind;
use subthreads::trace::TraceProgram;

fn machines() -> Vec<(&'static str, CmpConfig)> {
    let mut base = CmpConfig::test_small();
    base.max_cycles = 5_000_000;
    let mut all_or_nothing = base;
    all_or_nothing.subthreads = SubThreadConfig::disabled();
    let mut dense_subs = base;
    dense_subs.subthreads = SubThreadConfig {
        contexts: 8,
        spacing: SpacingPolicy::Every(17),
        exhaustion: ExhaustionPolicy::Merge,
    };
    let mut restart_all = base;
    restart_all.secondary = SecondaryPolicy::RestartAll;
    restart_all.subthreads.exhaustion = ExhaustionPolicy::Stop;
    vec![
        ("test_small", base),
        ("all_or_nothing", all_or_nothing),
        ("dense_subthreads", dense_subs),
        ("restart_all", restart_all),
    ]
}

fn programs() -> Vec<(&'static str, TraceProgram)> {
    vec![
        ("independent", independent(4, 400)),
        ("pipeline", pipeline(4, 500, 0.2, 0.8)),
        ("latched_rmw", latched_rmw(4, 400, 0.5)),
        (
            "shared_deps",
            shared_dependences(4, 600, &[Dependence::new(0.3, 0.4), Dependence::new(0.7, 0.6)]),
        ),
    ]
}

/// Sink off vs sink on vs overflowing sink: three byte-identical
/// reports for every program x machine combination.
#[test]
fn observed_reports_are_byte_identical() {
    let mut overflowed = 0usize;
    for (pname, program) in &programs() {
        for (mname, cfg) in machines() {
            let what = format!("{pname}/{mname}");
            let opts = RunOptions { audit: false, oracle: false, ..RunOptions::default() };
            let sim = CmpSimulator::new(cfg);
            let plain =
                serde_json::to_string(&sim.run_with(program, opts.clone())).expect("serialize");

            // A ring big enough to keep every event.
            let mut full = Observer::new(cfg.cpus, 1 << 20, 1024);
            let observed = sim.run_observed(program, opts.clone(), Some(&mut full));
            assert_eq!(
                plain,
                serde_json::to_string(&observed).expect("serialize"),
                "observation changed the report for {what}"
            );
            assert_eq!(full.events.dropped(), 0, "{what}: 1M-entry ring overflowed");
            assert!(!full.events.is_empty(), "{what}: no events from a real run");

            // A ring so small it must overflow; the report still must
            // not move, and the drop accounting must add up.
            let mut tiny = Observer::new(cfg.cpus, 8, 1024);
            let observed = sim.run_observed(program, opts.clone(), Some(&mut tiny));
            assert_eq!(
                plain,
                serde_json::to_string(&observed).expect("serialize"),
                "an overflowing ring changed the report for {what}"
            );
            if tiny.events.dropped() > 0 {
                overflowed += 1;
                assert_eq!(
                    tiny.events.dropped() + tiny.events.len() as u64,
                    full.events.len() as u64,
                    "{what}: dropped + kept != total emitted"
                );
            }
        }
    }
    assert!(overflowed > 0, "no combination overflowed an 8-entry ring");
}

/// The synthetic idle-span events exist precisely so that observed
/// timelines stay truthful across fast-forward skips: with fast-forward
/// off, no IdleSpan is ever emitted; with it on, the non-IdleSpan event
/// stream is identical.
#[test]
fn fast_forward_only_adds_idle_spans() {
    let (_, cfg) = machines()[0];
    let program = independent(4, 400);
    let base = RunOptions { audit: false, oracle: false, ..RunOptions::default() };
    let sim = CmpSimulator::new(cfg);

    let mut ff_on = Observer::new(cfg.cpus, 1 << 20, 1024);
    sim.run_observed(&program, base.clone(), Some(&mut ff_on));
    let mut ff_off = Observer::new(cfg.cpus, 1 << 20, 1024);
    sim.run_observed(&program, RunOptions { fast_forward: false, ..base }, Some(&mut ff_off));

    assert_eq!(ff_off.events.count(EventKind::IdleSpan), 0);
    assert!(ff_on.events.count(EventKind::IdleSpan) > 0, "miss-bound run never skipped");
    let strip = |o: &Observer| -> Vec<_> {
        o.events.iter().filter(|e| e.kind != EventKind::IdleSpan).copied().collect()
    };
    assert_eq!(strip(&ff_on), strip(&ff_off), "fast-forward changed the real event stream");
}

fn get<'v>(v: &'v serde::Value, key: &str) -> Option<&'v serde::Value> {
    v.as_object()?.iter().find(|(k, _)| k == key).map(|(_, val)| val)
}

fn get_u64(v: &serde::Value, key: &str) -> Option<u64> {
    match get(v, key)? {
        serde::Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn get_str<'v>(v: &'v serde::Value, key: &str) -> Option<&'v str> {
    get(v, key)?.as_str()
}

/// Exports a real (violation-heavy) run and checks the trace_event
/// structure: parseable JSON, and on each execution track every
/// sub-thread slice lies within its enclosing epoch slice.
#[test]
fn perfetto_export_parses_and_slices_nest() {
    let (_, cfg) = machines()[2]; // dense sub-threads: many slices
    let program = pipeline(4, 500, 0.2, 0.8);
    let opts = RunOptions { audit: false, oracle: false, ..RunOptions::default() };
    let sim = CmpSimulator::new(cfg);
    let mut obs = Observer::new(cfg.cpus, 1 << 20, 1024);
    let report = sim.run_observed(&program, opts, Some(&mut obs));

    let meta = TraceMeta {
        program: program.name.clone(),
        cpus: report.cpus,
        total_cycles: report.total_cycles,
    };
    let json = perfetto::export(&meta, obs.events.iter().copied());
    let doc = serde::parse(&json).expect("exported trace parses as JSON");
    let events = get(&doc, "traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    assert!(!events.is_empty());

    // Collect complete slices per tid, partition into epoch spans and
    // sub-thread spans by name.
    let mut epochs: Vec<(u64, u64, u64)> = Vec::new(); // (tid, start, end)
    let mut subs: Vec<(u64, u64, u64, String)> = Vec::new();
    for ev in events {
        if get_str(ev, "ph") != Some("X") {
            continue;
        }
        let tid = get_u64(ev, "tid").expect("slice tid");
        let ts = get_u64(ev, "ts").expect("slice ts");
        let dur = get_u64(ev, "dur").expect("slice dur");
        let name = get_str(ev, "name").expect("slice name").to_string();
        if name.starts_with("epoch ") {
            epochs.push((tid, ts, ts + dur));
        } else if name.starts_with("sub ") {
            subs.push((tid, ts, ts + dur, name));
        }
    }
    assert!(!epochs.is_empty(), "no epoch slices exported");
    assert!(!subs.is_empty(), "no sub-thread slices exported");
    for (tid, start, end, name) in &subs {
        let inside =
            epochs.iter().any(|(etid, estart, eend)| etid == tid && estart <= start && end <= eend);
        assert!(inside, "slice '{name}' [{start}, {end}) on tid {tid} nests in no epoch span");
    }
}
