//! Integration shape-checks of the §3.2 tuning story and the §1.2
//! predictor comparison.
//!
//! The tuning dynamics require paper-scale threads (violation costs do
//! not shrink with epoch size, so at toy scale latch serialization can
//! beat speculation and invert the story). The paper-scale tests are
//! ignored in debug builds — run `cargo test --release` to include them;
//! the harness (`tuning_curve`, `ablations`) exercises the same shapes.

use subthreads::core::{CmpConfig, CmpSimulator, PredictorConfig};
use subthreads::minidb::{OptLevel, Tpcc, TpccConfig, Transaction};

fn machine() -> CmpConfig {
    let mut c = CmpConfig::paper_default();
    c.max_cycles = 2_000_000_000;
    c
}

fn record_at(opts: OptLevel, txn: Transaction, count: usize) -> subthreads::trace::TraceProgram {
    let mut cfg = TpccConfig::paper();
    cfg.opts = opts;
    Tpcc::new(cfg).record(txn, count)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale; run with --release")]
fn tuning_improves_new_order_end_to_end() {
    // At this toy scale individual steps can be noisy (removing a latch
    // can expose violations the serialization was masking — see
    // EXPERIMENTS.md for the monotone paper-scale curve), but the full
    // tuning sequence must win, and the fully tuned engine must rewind
    // less work than the unoptimized one.
    let steps = OptLevel::tuning_steps();
    let runs: Vec<_> = steps
        .iter()
        .map(|(name, opts)| {
            let p = record_at(*opts, Transaction::NewOrder, 3);
            (*name, CmpSimulator::new(machine()).run(&p))
        })
        .collect();
    let first = &runs.first().expect("steps").1;
    let last = &runs.last().expect("steps").1;
    assert!(
        last.total_cycles < first.total_cycles,
        "tuning must win end-to-end: {} -> {}",
        first.total_cycles,
        last.total_cycles
    );
    assert!(last.breakdown.failed < first.breakdown.failed);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale; run with --release")]
fn unoptimized_engine_has_more_violations_than_optimized() {
    let unopt = record_at(OptLevel::none(), Transaction::NewOrder, 3);
    let opt = record_at(OptLevel::fully_optimized(), Transaction::NewOrder, 3);
    let r_unopt = CmpSimulator::new(machine()).run(&unopt);
    let r_opt = CmpSimulator::new(machine()).run(&opt);
    assert!(
        r_unopt.violations.total() > r_opt.violations.total(),
        "{} vs {}",
        r_unopt.violations.total(),
        r_opt.violations.total()
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale; run with --release")]
fn profiler_surfaces_the_planted_dependence_first() {
    // With the unoptimized engine, the top profiled dependence must be in
    // the engine's shared-state module (log tail / statistics), which is
    // what the first tuning steps remove.
    let p = record_at(OptLevel::none(), Transaction::NewOrder, 3);
    let r = CmpSimulator::new(machine()).run(&p);
    let top = r.profile.first().expect("violations were profiled");
    let module = top.load_pc.or(top.store_pc).expect("pc recorded").module();
    assert!(
        module == 0x08 || module == 0x10,
        "expected the shared engine state (or its false-sharing neighbor), got {module:#x}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale; run with --release")]
fn predictor_trades_violations_for_synchronization() {
    let p = record_at(OptLevel::none(), Transaction::NewOrder, 4);
    let plain = CmpSimulator::new(machine()).run(&p);
    let mut with_pred = machine();
    with_pred.predictor = PredictorConfig::aggressive();
    let predicted = CmpSimulator::new(with_pred).run(&p);
    assert!(predicted.predictor_synchronizations > 0);
    assert!(
        predicted.violations.primary < plain.violations.primary,
        "{} vs {}",
        predicted.violations.primary,
        plain.violations.primary
    );
    assert!(predicted.breakdown.sync > plain.breakdown.sync);
}
