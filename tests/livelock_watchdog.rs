//! Forward-progress watchdog tests: a constructed violation storm — an
//! older epoch repeatedly storing an address a younger epoch keeps
//! reloading — must be detected and reported as a `LivelockReport`;
//! detection alone must never change timing; and the
//! `progress_fallback` degradation must cap the storm while producing
//! oracle-identical architectural results.

use subthreads::core::{CmpConfig, CmpSimulator, RunOptions};
use subthreads::obs::{EventKind, Observer};
use subthreads::trace::{Addr, OpSink, Pc, ProgramBuilder, TraceProgram};

const HOT: Addr = Addr(0x9000);

/// Epoch 0 stores the hot address a dozen times, spaced out; epoch 1
/// loads it right away and then runs long. Every store lands after
/// epoch 1 has re-exposed the load, so epoch 1 rewinds once per store —
/// a commit-free streak the watchdog must flag.
fn storm_program() -> TraceProgram {
    let mut b = ProgramBuilder::new("storm");
    b.begin_parallel();
    b.begin_epoch();
    for i in 0..12u16 {
        b.store(Pc::new(0, i), HOT, 8);
        b.int_ops(Pc::new(0, 100 + i), 200);
    }
    b.end_epoch();
    b.begin_epoch();
    b.load(Pc::new(1, 0), HOT, 8);
    b.int_ops(Pc::new(1, 1), 4000);
    b.end_epoch();
    b.end_parallel();
    b.finish()
}

fn machine() -> CmpConfig {
    let mut cfg = CmpConfig::test_small();
    cfg.max_cycles = 5_000_000;
    cfg
}

fn opts(threshold: u64, fallback: bool) -> RunOptions {
    RunOptions {
        livelock_threshold: threshold,
        progress_fallback: fallback,
        ..RunOptions::default()
    }
}

#[test]
fn storm_is_detected_and_reported() {
    let sim = CmpSimulator::new(machine());
    let program = storm_program();
    let r = sim.run_with(&program, opts(4, false));
    assert_eq!(r.committed_epochs, 2, "storm must still drain: {r}");
    assert!(r.violations.primary >= 4, "storm program produced no storm: {r}");
    assert_eq!(r.livelocks.len(), 1, "expected exactly one storm: {:?}", r.livelocks);
    let ll = &r.livelocks[0];
    assert_eq!(ll.epoch, 1, "the younger epoch is the one storming");
    assert!(ll.storm_len >= 4, "storm_len below threshold: {ll:?}");
    assert!(!ll.serialized, "fallback was off");
    let load_pc = Pc::new(1, 0).0;
    assert!(
        ll.violation_pcs.contains(&load_pc)
            && ll.violation_pcs.iter().any(|&pc| pc != load_pc && pc < Pc::new(0, 12).0),
        "storm PCs must implicate the hot load and at least one store: {ll:?}"
    );
    assert!(ll.detected_at_cycle > 0 && ll.detected_at_cycle <= r.total_cycles);
}

#[test]
fn detection_is_passive() {
    // Same program, watchdog off vs. on: every timing-visible field of
    // the report must be identical — detection only ever appends to
    // `livelocks`.
    let sim = CmpSimulator::new(machine());
    let program = storm_program();
    let off = sim.run_with(&program, opts(0, false));
    let on = sim.run_with(&program, opts(4, false));
    assert!(off.livelocks.is_empty());
    assert!(!on.livelocks.is_empty());
    assert_eq!(off.total_cycles, on.total_cycles);
    assert_eq!(off.breakdown, on.breakdown);
    assert_eq!(off.violations, on.violations);
    assert_eq!(off.dispatched_ops, on.dispatched_ops);
}

#[test]
fn fallback_caps_the_storm_and_stays_oracle_identical() {
    // `RunOptions::default()` keeps the invariant auditor and the
    // sequential differential oracle armed with
    // `panic_on_audit_failure`, so this run passing at all *is* the
    // oracle-identity proof: the serialized epoch's committed memory
    // image matched a sequential replay byte for byte.
    let sim = CmpSimulator::new(machine());
    let program = storm_program();
    let stormy = sim.run_with(&program, opts(4, false));
    let degraded = sim.run_with(&program, opts(4, true));
    assert_eq!(degraded.committed_epochs, 2);
    assert!(degraded.audit_failures.is_empty());
    assert_eq!(degraded.livelocks.len(), 1);
    assert!(degraded.livelocks[0].serialized);
    assert!(
        degraded.violations.primary < stormy.violations.primary,
        "serializing the storming epoch must cut violations: {} !< {}",
        degraded.violations.primary,
        stormy.violations.primary
    );
    // The identity every run must keep, storms or not.
    assert_eq!(degraded.breakdown.total(), degraded.total_cycles * degraded.cpus as u64);
}

#[test]
fn storm_emits_a_livelock_event() {
    let sim = CmpSimulator::new(machine());
    let program = storm_program();
    let mut obs = Observer::new(machine().cpus, 1 << 20, 1024);
    let r = sim.run_observed(&program, opts(4, false), Some(&mut obs));
    assert_eq!(obs.events.count(EventKind::Livelock), 1);
    let ev = obs
        .events
        .events()
        .into_iter()
        .find(|e| e.kind == EventKind::Livelock)
        .expect("counted above");
    assert_eq!(ev.epoch, 1);
    assert!(ev.a >= 4, "a = streak at detection");
    assert!(ev.a <= r.livelocks[0].storm_len, "the report tracks the full storm");
}
