//! Correctness anchors for the relaxed memory-order model.
//!
//! Three properties, each over randomized programs with real cross-epoch
//! dependences:
//!
//! 1. **SC is byte-invisible** — a config that visited any TSO buffer
//!    geometry and was reset to `MemoryModel::Sc` produces a
//!    byte-identical `SimReport` JSON, with every TSO counter zero: the
//!    store-buffer machinery must leave no residue when disabled.
//! 2. **TSO is oracle-identical** — under TSO at any buffer depth,
//!    every epoch still commits, the commit-serializability auditor
//!    stays silent, the sequential differential oracle matches the
//!    committed memory image, and the cycle ledger (now including
//!    drain-stall cycles) still balances.
//! 3. **Store flow is conserved** — with no faults injected, every
//!    buffered store eventually drains (`store_drains` only falls short
//!    of `buffered_stores` by entries discarded in rewinds, never the
//!    other way around).

use proptest::prelude::*;
use subthreads::core::{CmpConfig, CmpSimulator, MemoryModel, RunOptions};
use subthreads::trace::{Addr, OpSink, Pc, ProgramBuilder, TraceProgram};

#[derive(Debug, Clone)]
enum GenOp {
    Alu(u8),
    Load(u8),
    Store(u8),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        4 => (1u8..=4).prop_map(GenOp::Alu),
        2 => (0u8..16).prop_map(GenOp::Load),
        1 => (0u8..16).prop_map(GenOp::Store),
    ]
}

fn gen_program() -> impl Strategy<Value = TraceProgram> {
    // 2..5 epochs over a 16-slot shared pool: stores buffer and forward,
    // and cross-epoch RAW dependences are detected at drain time.
    proptest::collection::vec(proptest::collection::vec(gen_op(), 10..120), 2..5).prop_map(
        |epochs| {
            let mut b = ProgramBuilder::new("memorder-random");
            b.begin_parallel();
            for (e, ops) in epochs.iter().enumerate() {
                b.begin_epoch();
                for (i, op) in ops.iter().enumerate() {
                    let pc = Pc::new(e as u16, i as u16);
                    match op {
                        GenOp::Alu(n) => b.int_ops(pc, *n as usize),
                        GenOp::Load(slot) => b.load(pc, Addr(0x7000 + 8 * *slot as u64), 8),
                        GenOp::Store(slot) => b.store(pc, Addr(0x7000 + 8 * *slot as u64), 8),
                    }
                }
                b.end_epoch();
            }
            b.end_parallel();
            b.finish()
        },
    )
}

fn machine(model: MemoryModel) -> CmpConfig {
    let mut cfg = CmpConfig::test_small();
    cfg.memory_model = model;
    cfg.max_cycles = 5_000_000;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sc_is_byte_invisible_at_any_buffer_geometry(
        program in gen_program(),
        geometry in 1usize..=64,
    ) {
        let base = CmpSimulator::new(machine(MemoryModel::Sc))
            .run_with(&program, RunOptions::default());
        prop_assert_eq!(base.buffered_stores, 0);
        prop_assert_eq!(base.forwarded_loads, 0);
        prop_assert_eq!(base.store_drains, 0);
        prop_assert_eq!(base.serializability_breaches, 0);
        prop_assert_eq!(base.breakdown.drain_stall, 0);
        let base_json = serde_json::to_string(&base).expect("report serializes");
        // A config that carried a TSO geometry and was reset to Sc must
        // not leak the geometry into the run.
        let mut cfg = machine(MemoryModel::Tso { buffer_entries: geometry });
        cfg.memory_model = MemoryModel::Sc;
        let r = CmpSimulator::new(cfg).run_with(&program, RunOptions::default());
        let json = serde_json::to_string(&r).expect("report serializes");
        prop_assert_eq!(&json, &base_json, "SC after geometry {} changed the report", geometry);
    }

    #[test]
    fn tso_commits_oracle_identical_state_at_any_depth(program in gen_program()) {
        // RunOptions::default() arms the invariant auditor and the
        // sequential differential oracle and panics on any failure: a
        // TSO run that commits a different logical state than program
        // order fails this property loudly.
        let epochs = program.stats().epochs as u64;
        let sc = CmpSimulator::new(machine(MemoryModel::Sc))
            .run_with(&program, RunOptions::default());
        for depth in [1usize, 2, 4, 32] {
            let cfg = machine(MemoryModel::Tso { buffer_entries: depth });
            let r = CmpSimulator::new(cfg).run_with(&program, RunOptions::default());
            prop_assert!(r.audit_failures.is_empty(), "depth {depth}: {:?}", r.audit_failures);
            prop_assert_eq!(r.committed_epochs, epochs, "depth {} lost epochs", depth);
            prop_assert_eq!(r.committed_epochs, sc.committed_epochs);
            prop_assert_eq!(r.serializability_breaches, 0);
            prop_assert!(r.protocol_errors.is_empty(), "depth {depth}: {:?}", r.protocol_errors);
            prop_assert_eq!(r.breakdown.total(), r.total_cycles * r.cpus as u64);
        }
    }

    #[test]
    fn every_buffered_store_drains_or_rewinds(program in gen_program()) {
        let cfg = machine(MemoryModel::Tso { buffer_entries: 4 });
        let r = CmpSimulator::new(cfg).run_with(&program, RunOptions::default());
        // Rewinds discard buffered entries, so drains can fall short of
        // buffered stores — but a drain can never outnumber them, and
        // with every epoch committed the buffers must end empty.
        prop_assert!(r.store_drains <= r.buffered_stores,
            "{} drains from {} buffered stores", r.store_drains, r.buffered_stores);
        if r.violations.total() == 0 {
            prop_assert_eq!(r.store_drains, r.buffered_stores);
        }
    }
}
