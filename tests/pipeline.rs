//! End-to-end integration: TPC-C → trace → CMP simulation, checking the
//! cross-crate invariants no unit test can see.

use subthreads::core::experiment::{run_benchmark, BenchmarkPrograms, ExperimentKind};
use subthreads::core::{CmpConfig, CmpSimulator, SpacingPolicy};
use subthreads::minidb::{Tpcc, TpccConfig, Transaction};

fn machine() -> CmpConfig {
    let mut c = CmpConfig::paper_default();
    // Scaled-down test threads need proportionally scaled sub-threads.
    c.subthreads.spacing = SpacingPolicy::EvenDivision;
    c.max_cycles = 100_000_000;
    c
}

fn programs(txn: Transaction, count: usize) -> BenchmarkPrograms {
    let (plain, tls) = Tpcc::record_pair(&TpccConfig::test(), txn, count);
    BenchmarkPrograms { plain, tls }
}

#[test]
fn every_benchmark_runs_all_five_experiments() {
    for txn in Transaction::ALL {
        let progs = programs(txn, 1);
        let results = run_benchmark(&machine(), &progs);
        assert_eq!(results.len(), 5, "{}", txn.label());
        for (kind, r) in &results {
            // Accounting identity: every CPU-cycle categorized once.
            assert_eq!(
                r.breakdown.total(),
                r.total_cycles * r.cpus as u64,
                "{} {}",
                txn.label(),
                kind.label()
            );
            // Every epoch committed exactly once.
            let program = if kind.uses_tls_trace() { &progs.tls } else { &progs.plain };
            let expected = if kind.serialized() {
                program.regions.len() as u64
            } else {
                program.regions.iter().map(|r| r.epochs() as u64).sum()
            };
            assert_eq!(r.committed_epochs, expected, "{} {}", txn.label(), kind.label());
            // Nothing retained was fabricated: at least the program's
            // instructions were dispatched.
            assert!(
                r.dispatched_ops
                    >= (program.total_ops() as u64).saturating_sub(
                        program
                            .iter_ops()
                            .filter(|o| matches!(
                                o.kind(),
                                subthreads::trace::OpKind::LatchAcquire(_)
                                    | subthreads::trace::OpKind::LatchRelease(_)
                            ))
                            .count() as u64
                    )
            );
        }
    }
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let progs = programs(Transaction::NewOrder, 2);
    let a = CmpSimulator::new(machine()).run(&progs.tls);
    let b = CmpSimulator::new(machine()).run(&progs.tls);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.breakdown, b.breakdown);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.l1, b.l1);
    assert_eq!(
        serde_json::to_string(&a.profile).unwrap(),
        serde_json::to_string(&b.profile).unwrap()
    );
}

#[test]
fn identically_seeded_databases_record_identical_traces() {
    let mut a = Tpcc::new(TpccConfig::test());
    let mut b = Tpcc::new(TpccConfig::test());
    let pa = a.record(Transaction::Delivery, 1);
    let pb = b.record(Transaction::Delivery, 1);
    assert_eq!(pa.total_ops(), pb.total_ops());
    let ka: Vec<_> = pa.iter_ops().map(|o| format!("{o:?}")).collect();
    let kb: Vec<_> = pb.iter_ops().map(|o| format!("{o:?}")).collect();
    assert_eq!(ka, kb);
}

#[test]
fn tls_software_transformation_preserves_database_logic() {
    // The plain (unoptimized engine) and TLS (optimized engine) runs must
    // compute the same logical database state: same row counts, same
    // district order counters.
    use subthreads::minidb::tpcc::schema::{field, key};
    use subthreads::minidb::OptLevel;

    let mut plain_cfg = TpccConfig::test();
    plain_cfg.opts = OptLevel::none();
    let mut a = Tpcc::new(plain_cfg);
    let mut b = Tpcc::new(TpccConfig::test());
    for _ in 0..3 {
        a.run_one(Transaction::NewOrder);
        a.run_one(Transaction::Delivery);
        a.run_one(Transaction::Payment);
        b.run_one(Transaction::NewOrder);
        b.run_one(Transaction::Delivery);
        b.run_one(Transaction::Payment);
    }
    assert_eq!(a.tables.orders.count(&mut a.env), b.tables.orders.count(&mut b.env));
    assert_eq!(a.tables.new_order.count(&mut a.env), b.tables.new_order.count(&mut b.env));
    assert_eq!(a.tables.order_line.count(&mut a.env), b.tables.order_line.count(&mut b.env));
    for d in 1..=a.cfg.districts {
        let da = a.tables.district.get_addr(&mut a.env, key::district(d)).unwrap();
        let db = b.tables.district.get_addr(&mut b.env, key::district(d)).unwrap();
        assert_eq!(
            a.env.mem.peek_u32(da.offset(field::D_NEXT_O_ID)),
            b.env.mem.peek_u32(db.offset(field::D_NEXT_O_ID)),
            "district {d} order counter"
        );
    }
}

#[test]
fn violations_never_lose_epochs_or_work() {
    // Even under heavy violation churn, every epoch commits and the
    // simulator terminates.
    let progs = programs(Transaction::NewOrder150, 1);
    let r = CmpSimulator::new(machine()).run(&progs.tls);
    assert!(r.violations.total() > 0, "this workload is dependence-heavy");
    let expected: u64 = progs.tls.regions.iter().map(|r| r.epochs() as u64).sum();
    assert_eq!(r.committed_epochs, expected);
    assert!(r.wasted_work_ratio() < 0.9, "must make forward progress");
}

#[test]
fn no_speculation_bound_is_fastest() {
    let progs = programs(Transaction::NewOrder, 2);
    let results = run_benchmark(&machine(), &progs);
    let cycles = |k: ExperimentKind| {
        results.iter().find(|(kk, _)| *kk == k).map(|(_, r)| r.total_cycles).unwrap()
    };
    let no_spec = cycles(ExperimentKind::NoSpeculation);
    for (k, r) in &results {
        assert!(
            r.total_cycles * 100 >= no_spec * 98,
            "{} ({} cycles) beat the no-speculation bound ({no_spec})",
            k.label(),
            r.total_cycles
        );
    }
}
