//! Correctness anchors for the value-prediction subsystem.
//!
//! Three properties, each over randomized programs with real cross-epoch
//! dependences:
//!
//! 1. **Oracle identity** — with prediction on, every committed memory
//!    image still matches the sequential differential oracle (suppressed
//!    RAWs must be validated, never waved through), and every epoch
//!    commits.
//! 2. **Disabled is invisible** — `VPredictConfig::disabled()` produces
//!    a byte-identical `SimReport` JSON regardless of table geometry,
//!    with both prediction counters zero.
//! 3. **Chaos survival** — with prediction enabled, seeded fault plans
//!    across all six fault classes still commit everything with a silent
//!    auditor and a balanced cycle ledger.

use proptest::prelude::*;
use subthreads::core::{
    CmpConfig, CmpSimulator, FaultPlan, RunOptions, VPredictConfig, ALL_FAULT_CLASSES,
};
use subthreads::trace::{Addr, OpSink, Pc, ProgramBuilder, TraceProgram};

#[derive(Debug, Clone)]
enum GenOp {
    Alu(u8),
    Load(u8),
    Store(u8),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        4 => (1u8..=4).prop_map(GenOp::Alu),
        2 => (0u8..16).prop_map(GenOp::Load),
        1 => (0u8..16).prop_map(GenOp::Store),
    ]
}

/// Random programs over a 16-slot shared pool — dependences (and thus
/// suppression opportunities across all four value-model classes) are
/// common. Loads reuse a per-slot PC so the predictor's table actually
/// trains across epochs, the way a hot program-counter site would.
fn gen_program() -> impl Strategy<Value = TraceProgram> {
    proptest::collection::vec(proptest::collection::vec(gen_op(), 10..120), 2..5).prop_map(
        |epochs| {
            let mut b = ProgramBuilder::new("vpredict-random");
            b.begin_parallel();
            for (e, ops) in epochs.iter().enumerate() {
                b.begin_epoch();
                for (i, op) in ops.iter().enumerate() {
                    match op {
                        GenOp::Alu(n) => b.int_ops(Pc::new(e as u16, i as u16), *n as usize),
                        GenOp::Load(slot) => {
                            b.load(Pc::new(99, *slot as u16), Addr(0x7000 + 8 * *slot as u64), 8)
                        }
                        GenOp::Store(slot) => {
                            b.store(Pc::new(98, *slot as u16), Addr(0x7000 + 8 * *slot as u64), 8)
                        }
                    }
                }
                b.end_epoch();
            }
            b.end_parallel();
            b.finish()
        },
    )
}

fn machine(vpredict: VPredictConfig) -> CmpConfig {
    let mut cfg = CmpConfig::test_small();
    cfg.vpredict = vpredict;
    cfg.max_cycles = 5_000_000;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prediction_on_commits_oracle_identical_results(program in gen_program()) {
        // RunOptions::default() keeps the sequential differential oracle
        // armed and panics on audit failure: a suppression that escaped
        // commit-time validation fails this property loudly.
        let epochs = program.stats().epochs as u64;
        for threshold in [1u8, 2] {
            let cfg = machine(VPredictConfig {
                enabled: true,
                entries: 256,
                threshold,
            });
            let r = CmpSimulator::new(cfg).run_with(&program, RunOptions::default());
            prop_assert!(r.audit_failures.is_empty(), "{:?}", r.audit_failures);
            prop_assert_eq!(r.committed_epochs, epochs);
            prop_assert_eq!(r.breakdown.total(), r.total_cycles * r.cpus as u64);
        }
    }

    #[test]
    fn disabled_predictor_is_byte_invisible(program in gen_program()) {
        let base = CmpSimulator::new(machine(VPredictConfig::disabled()))
            .run_with(&program, RunOptions::default());
        prop_assert_eq!(base.predicted_hits, 0);
        prop_assert_eq!(base.value_mispredicts, 0);
        let base_json = serde_json::to_string(&base).expect("report serializes");
        // Table geometry must not leak when disabled.
        for exotic in [
            VPredictConfig { enabled: false, entries: 16, threshold: 1 },
            VPredictConfig { enabled: false, entries: 8192, threshold: 3 },
        ] {
            let r = CmpSimulator::new(machine(exotic))
                .run_with(&program, RunOptions::default());
            let json = serde_json::to_string(&r).expect("report serializes");
            prop_assert_eq!(&json, &base_json, "disabled geometry changed the report");
        }
    }

    #[test]
    fn prediction_survives_seeded_fault_plans(program in gen_program()) {
        let epochs = program.stats().epochs as u64;
        let cfg = machine(VPredictConfig::prophet());
        let sim = CmpSimulator::new(cfg);
        let baseline = sim.run_with(
            &program,
            RunOptions { panic_on_audit_failure: false, ..RunOptions::default() },
        );
        prop_assert!(baseline.audit_failures.is_empty(), "{:?}", baseline.audit_failures);
        for seed in 0..16u64 {
            let plan = FaultPlan::generate(seed, &ALL_FAULT_CLASSES, baseline.total_cycles, 4);
            let n = plan.len() as u64;
            let r = sim.run_with(&program, RunOptions::chaos(plan));
            prop_assert!(r.audit_failures.is_empty(),
                "seed {seed}: auditor tripped with prediction on: {:?}", r.audit_failures);
            prop_assert_eq!(r.committed_epochs, epochs, "seed {} lost epochs", seed);
            prop_assert_eq!(r.breakdown.total(), r.total_cycles * r.cpus as u64);
            prop_assert_eq!(r.faults.applied() + r.faults.skipped, n);
        }
    }
}
