//! Chaos property tests: whatever the program and whatever the seeded
//! fault plan, the TLS machine must degrade gracefully — every epoch
//! still commits, the invariant auditor stays silent, the sequential
//! differential oracle matches the speculative memory image, and the
//! fault ledger accounts for every scheduled event.
//!
//! Failures shrink to a minimal (program, plan-seed) pair because the
//! whole plan sweep sits inside the property.

use proptest::prelude::*;
use subthreads::core::{
    CmpConfig, CmpSimulator, FaultClass, FaultPlan, MemoryModel, RunOptions, ALL_FAULT_CLASSES,
    STORE_BUFFER_FAULT_CLASSES,
};
use subthreads::trace::{Addr, OpSink, Pc, ProgramBuilder, TraceProgram};

#[derive(Debug, Clone)]
enum GenOp {
    Alu(u8),
    Load(u8),
    Store(u8),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        4 => (1u8..=4).prop_map(GenOp::Alu),
        2 => (0u8..16).prop_map(GenOp::Load),
        1 => (0u8..16).prop_map(GenOp::Store),
    ]
}

fn gen_program() -> impl Strategy<Value = TraceProgram> {
    // 2..5 epochs of 10..120 ops over a 16-slot shared address pool:
    // small enough to sweep 32 fault plans per case, shared enough that
    // real RAW dependences (and thus real rewinds) are common.
    proptest::collection::vec(proptest::collection::vec(gen_op(), 10..120), 2..5).prop_map(
        |epochs| {
            let mut b = ProgramBuilder::new("chaos-random");
            b.begin_parallel();
            for (e, ops) in epochs.iter().enumerate() {
                b.begin_epoch();
                for (i, op) in ops.iter().enumerate() {
                    let pc = Pc::new(e as u16, i as u16);
                    match op {
                        GenOp::Alu(n) => b.int_ops(pc, *n as usize),
                        GenOp::Load(slot) => b.load(pc, Addr(0x7000 + 8 * *slot as u64), 8),
                        GenOp::Store(slot) => b.store(pc, Addr(0x7000 + 8 * *slot as u64), 8),
                    }
                }
                b.end_epoch();
            }
            b.end_parallel();
            b.finish()
        },
    )
}

fn machine() -> CmpConfig {
    let mut cfg = CmpConfig::test_small();
    cfg.max_cycles = 5_000_000;
    cfg
}

fn tso_machine() -> CmpConfig {
    let mut cfg = machine();
    cfg.memory_model = MemoryModel::Tso { buffer_entries: 4 };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_program_survives_32_seeded_fault_plans(program in gen_program()) {
        let epochs = program.stats().epochs as u64;
        let sim = CmpSimulator::new(machine());
        // Fault-free baseline fixes the horizon plans draw cycles from.
        let baseline = sim.run_with(
            &program,
            RunOptions { panic_on_audit_failure: false, ..RunOptions::default() },
        );
        prop_assert!(baseline.audit_failures.is_empty(),
            "fault-free baseline failed audit: {:?}", baseline.audit_failures);
        for seed in 0..32u64 {
            let plan = FaultPlan::generate(seed, &ALL_FAULT_CLASSES, baseline.total_cycles, 4);
            let n = plan.len() as u64;
            let r = sim.run_with(&program, RunOptions::chaos(plan));
            prop_assert!(r.audit_failures.is_empty(),
                "seed {seed}: auditor tripped: {:?}", r.audit_failures);
            prop_assert_eq!(r.committed_epochs, epochs, "seed {} lost epochs", seed);
            // Accounting identity survives faults.
            prop_assert_eq!(r.breakdown.total(), r.total_cycles * r.cpus as u64);
            // Every scheduled fault is accounted: applied or skipped.
            prop_assert_eq!(r.faults.applied() + r.faults.skipped, n);
        }
    }

    #[test]
    fn store_buffer_chaos_survives_or_detects_by_class(program in gen_program()) {
        // The three store-buffer fault classes have *per-class*
        // expectations on a TSO machine: a stuck or reordered drain is
        // an ordering hazard the protocol must absorb; a dropped buffer
        // entry is a lost store and must be *detected* by the
        // serializability auditor — as a structured protocol error,
        // never a panic — every single time one is applied.
        let epochs = program.stats().epochs as u64;
        let sim = CmpSimulator::new(tso_machine());
        let baseline = sim.run_with(
            &program,
            RunOptions { panic_on_audit_failure: false, ..RunOptions::default() },
        );
        prop_assert!(baseline.audit_failures.is_empty(),
            "fault-free TSO baseline failed audit: {:?}", baseline.audit_failures);
        prop_assert_eq!(baseline.serializability_breaches, 0);
        for seed in 0..16u64 {
            for class in STORE_BUFFER_FAULT_CLASSES {
                let plan = FaultPlan::generate(seed, &[class], baseline.total_cycles, 4);
                let n = plan.len() as u64;
                let r = sim.run_with(&program, RunOptions::chaos(plan));
                prop_assert!(r.audit_failures.is_empty(),
                    "seed {seed} {class}: invariant auditor tripped: {:?}", r.audit_failures);
                prop_assert_eq!(r.committed_epochs, epochs,
                    "seed {} {}: lost epochs", seed, class);
                prop_assert_eq!(r.breakdown.total(), r.total_cycles * r.cpus as u64);
                prop_assert_eq!(r.faults.applied() + r.faults.skipped, n);
                if class == FaultClass::DroppedEntry {
                    if r.faults.applied() > 0 {
                        prop_assert!(r.serializability_breaches > 0,
                            "seed {seed}: {} dropped store(s) went undetected",
                            r.faults.applied());
                        prop_assert!(
                            r.protocol_errors.iter().any(|e| e.message.contains("store-flow")),
                            "seed {seed}: breach without a store-flow protocol error: {:?}",
                            r.protocol_errors);
                    } else {
                        prop_assert_eq!(r.serializability_breaches, 0);
                    }
                } else {
                    prop_assert_eq!(r.serializability_breaches, 0,
                        "seed {} {}: must be survived, not flagged", seed, class);
                    prop_assert!(r.protocol_errors.is_empty(),
                        "seed {seed} {class}: {:?}", r.protocol_errors);
                }
            }
        }
    }

    #[test]
    fn sabotaged_rewind_never_escapes_the_auditor(
        program in gen_program(),
        seed in 0u64..16,
    ) {
        // Break the protocol on purpose (rewinds skip the L2 state wash)
        // and inject a violation so a rewind definitely happens: the
        // auditor — not a downstream assert or the oracle alone — must
        // catch it.
        let sim = CmpSimulator::new(machine());
        let plan = FaultPlan::generate(seed, &[FaultClass::SpuriousPrimary], 2_000, 2);
        let opts = RunOptions {
            sabotage_rewind: true,
            panic_on_audit_failure: false,
            ..RunOptions::chaos(plan)
        };
        let r = sim.run_with(&program, opts);
        if r.faults.applied() > 0 {
            prop_assert!(!r.audit_failures.is_empty(),
                "a sabotaged rewind ran undetected ({} faults applied)",
                r.faults.applied());
            prop_assert!(r.audit_failures.iter().any(|f| f.contains("post-rewind")),
                "sabotage caught, but not by the post-rewind audit: {:?}",
                r.audit_failures);
        }
    }
}
