//! Dedicated tests for the synchronizing dependence predictor (§1.2's
//! prior-art alternative to sub-threads): aliasing behavior through the
//! public API, confidence saturation vs displacement, and — the paper's
//! actual finding — the over-serialization trade-off when a hot load PC
//! has mostly-independent dynamic instances.

use subthreads::core::{
    CmpConfig, CmpSimulator, DependencePredictor, PredictorConfig, SubThreadConfig,
};
use subthreads::trace::{Addr, OpSink, Pc, ProgramBuilder, TraceProgram};

fn predictor(entries: usize, threshold: u8) -> DependencePredictor {
    DependencePredictor::new(&PredictorConfig { enabled: true, entries, threshold })
}

/// Finds a PC that aliases `a` in a table of `entries` slots, probing
/// purely through the public API: train a fresh predictor on `a` until
/// it predicts, train the candidate once, and see whether `a` was
/// displaced.
fn find_alias(a: Pc, entries: usize) -> Pc {
    for m in 0..128u16 {
        for s in 0..64u16 {
            let cand = Pc::new(m, s);
            if cand == a {
                continue;
            }
            let mut p = predictor(entries, 1);
            p.train(a);
            assert!(p.predicts_violation(a));
            p.train(cand);
            if !p.predicts_violation(a) {
                return cand;
            }
        }
    }
    panic!("no alias of {a:?} in a {entries}-entry table within the search bound");
}

#[test]
fn aliased_pcs_steal_each_others_entry() {
    let a = Pc::new(3, 5);
    let b = find_alias(a, 16);
    let mut p = predictor(16, 2);
    p.train(a);
    p.train(a);
    assert!(p.predicts_violation(a));
    assert!(!p.predicts_violation(b), "the alias must not inherit confidence");
    // One training of the alias takes the whole entry over.
    p.train(b);
    assert!(!p.predicts_violation(a), "displaced by the alias");
    assert!(!p.predicts_violation(b), "takeover starts at confidence 1 < threshold 2");
    p.train(b);
    assert!(p.predicts_violation(b));
}

#[test]
fn saturated_confidence_still_loses_to_one_displacement() {
    // Confidence saturates at 3: a PC trained a thousand times holds no
    // more ground against a direct-mapped alias than one trained three
    // times. That bounded memory is what keeps the table small — and
    // what makes hot aliased sites thrash.
    let a = Pc::new(7, 1);
    let b = find_alias(a, 16);
    let mut p = predictor(16, 3);
    for _ in 0..1000 {
        p.train(a);
    }
    assert!(p.predicts_violation(a));
    p.train(b);
    assert!(!p.predicts_violation(a), "one alias training evicts a saturated entry");
    assert_eq!(p.trainings(), 1001);
}

/// The paper's §1.2 objection, reproduced: one load PC with many dynamic
/// instances, of which exactly one (epoch 1 reading epoch 0's store)
/// carries a real dependence. Every other epoch uses the same PC on
/// private lines. A PC-indexed predictor cannot tell the instances
/// apart, so once the single real violation trains the PC, later epochs
/// with no dependence at all stall their first instance too.
fn hot_pc_mostly_independent(epochs: u16, independent_loads: usize) -> TraceProgram {
    let hot = Pc::new(40, 1);
    let mut b = ProgramBuilder::new("hot-pc");
    b.begin_parallel();
    for e in 0..epochs {
        b.begin_epoch();
        if e == 0 {
            b.int_ops(Pc::new(e, 0), 2000);
            b.store(Pc::new(40, 2), Addr(0xE000), 8);
        }
        // Independent instances of the same PC, each on a private line.
        for i in 0..independent_loads {
            b.int_ops(Pc::new(e, 3), 50);
            b.load(hot, Addr(0x10_0000 + e as u64 * 0x10_000 + i as u64 * 64), 8);
        }
        if e == 1 {
            // The one real dependence: reads epoch 0's store too early.
            // Last in the epoch so the finite exposed-load table still
            // holds this line when the store arrives — but the epoch
            // must stay short enough that the load still beats the
            // store, or there is no violation to train on at all.
            b.load(hot, Addr(0xE000), 8);
        }
        b.int_ops(Pc::new(e, 4), 500);
        b.end_epoch();
    }
    b.end_parallel();
    b.finish()
}

#[test]
fn predictor_over_serializes_independent_instances_of_a_hot_pc() {
    let p = hot_pc_mostly_independent(8, 12);

    let mut subthreads_only = CmpConfig::test_small();
    subthreads_only.predictor = PredictorConfig::disabled();

    let mut predictor_only = CmpConfig::test_small();
    predictor_only.subthreads = SubThreadConfig::disabled();
    predictor_only.predictor = PredictorConfig::aggressive();

    let r_subs = CmpSimulator::new(subthreads_only).run(&p);
    let r_pred = CmpSimulator::new(predictor_only).run(&p);

    // Both are correct and complete.
    assert_eq!(r_subs.committed_epochs, 8);
    assert_eq!(r_pred.committed_epochs, 8);

    // The predictor stalls more epochs than have real dependences:
    // after the one real violation trains the hot PC, dependence-free
    // later epochs synchronize their first instance of it anyway.
    let real_dependences = 1; // epoch 1 reading epoch 0's store
    assert!(
        r_pred.predictor_synchronizations > real_dependences,
        "expected over-serialization, got {} synchronizations for {} real dependence",
        r_pred.predictor_synchronizations,
        real_dependences
    );
    assert!(r_pred.breakdown.sync > 0, "synchronization must cost stall cycles");

    // And that over-serialization is the trade-off the paper reports:
    // sub-threads tolerate the single real dependence without stalling
    // the independent instances, finishing no later.
    assert!(
        r_subs.total_cycles <= r_pred.total_cycles,
        "sub-threads ({} cycles) should beat the over-serializing predictor ({} cycles)",
        r_subs.total_cycles,
        r_pred.total_cycles
    );
}
