//! End-to-end: the full TPC-C transaction mix recorded and simulated.

use subthreads::core::{CmpConfig, CmpSimulator, SpacingPolicy};
use subthreads::minidb::tpcc::consistency;
use subthreads::minidb::{Tpcc, TpccConfig};

#[test]
fn the_standard_mix_simulates_and_stays_consistent() {
    let mut tpcc = Tpcc::new(TpccConfig::test());
    let program = tpcc.record_mix(12);
    consistency::check(&mut tpcc).expect("database consistent after the mix");

    let mut machine = CmpConfig::paper_default();
    machine.subthreads.spacing = SpacingPolicy::EvenDivision;
    machine.max_cycles = 200_000_000;
    let r = CmpSimulator::new(machine).run(&program);
    let expected: u64 = program.regions.iter().map(|reg| reg.epochs() as u64).sum();
    assert_eq!(r.committed_epochs, expected);
    assert_eq!(r.breakdown.total(), r.total_cycles * 4);

    // The mix must contain both parallel phases (NEW ORDER et al.) and
    // mostly-sequential ones (PAYMENT): idle present, busy present.
    assert!(r.breakdown.idle > 0);
    assert!(r.breakdown.busy > 0);
}
