//! Property tests of the simulator over randomly generated speculative
//! programs: whatever the dependence pattern, the machine terminates,
//! commits every epoch in order, preserves the accounting identity, and
//! reacts to dependences exactly when they exist.

use proptest::prelude::*;
use subthreads::core::{
    CmpConfig, CmpSimulator, ExhaustionPolicy, SecondaryPolicy, SpacingPolicy, SubThreadConfig,
};
use subthreads::trace::{Addr, OpSink, Pc, ProgramBuilder, TraceProgram};

#[derive(Debug, Clone)]
enum GenOp {
    Alu(u8),
    Load(u8),
    Store(u8),
    Branch(bool),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        4 => (1u8..=4).prop_map(GenOp::Alu),
        2 => (0u8..32).prop_map(GenOp::Load),
        1 => (0u8..32).prop_map(GenOp::Store),
        1 => any::<bool>().prop_map(GenOp::Branch),
    ]
}

fn gen_program() -> impl Strategy<Value = TraceProgram> {
    // 2..6 epochs of 10..200 ops over a 32-slot shared address pool.
    proptest::collection::vec(proptest::collection::vec(gen_op(), 10..200), 2..6).prop_map(
        |epochs| {
            let mut b = ProgramBuilder::new("random");
            b.begin_parallel();
            for (e, ops) in epochs.iter().enumerate() {
                b.begin_epoch();
                for (i, op) in ops.iter().enumerate() {
                    let pc = Pc::new(e as u16, i as u16);
                    match op {
                        GenOp::Alu(n) => b.int_ops(pc, *n as usize),
                        GenOp::Load(slot) => b.load(pc, Addr(0x4000 + 8 * *slot as u64), 8),
                        GenOp::Store(slot) => b.store(pc, Addr(0x4000 + 8 * *slot as u64), 8),
                        GenOp::Branch(t) => b.branch(pc, *t),
                    }
                }
                b.end_epoch();
            }
            b.end_parallel();
            b.finish()
        },
    )
}

fn machines() -> Vec<CmpConfig> {
    let mut base = CmpConfig::test_small();
    base.max_cycles = 5_000_000;
    let mut v = Vec::new();
    for contexts in [1u8, 2, 8] {
        for secondary in [SecondaryPolicy::StartTable, SecondaryPolicy::RestartAll] {
            for exhaustion in [ExhaustionPolicy::Merge, ExhaustionPolicy::Stop] {
                let mut c = base;
                c.subthreads =
                    SubThreadConfig { contexts, spacing: SpacingPolicy::Every(17), exhaustion };
                c.secondary = secondary;
                v.push(c);
            }
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn machine_invariants_hold_for_any_program(program in gen_program()) {
        let epochs = program.stats().epochs as u64;
        for cfg in machines() {
            let r = CmpSimulator::new(cfg).run(&program);
            // Terminates (max_cycles would panic) and commits everything.
            prop_assert_eq!(r.committed_epochs, epochs);
            // Accounting identity.
            prop_assert_eq!(r.breakdown.total(), r.total_cycles * r.cpus as u64);
            // Work conservation: everything in the program ran at least
            // once; failed time implies re-execution and vice versa.
            prop_assert!(r.dispatched_ops >= program.total_ops() as u64);
            if r.violations.total() == 0 {
                prop_assert_eq!(r.dispatched_ops, program.total_ops() as u64);
                prop_assert_eq!(r.breakdown.failed, 0);
            }
        }
    }

    #[test]
    fn dependence_free_programs_never_violate(
        epochs in proptest::collection::vec(10usize..100, 2..5)
    ) {
        // Each epoch touches a disjoint address range.
        let mut b = ProgramBuilder::new("disjoint");
        b.begin_parallel();
        for (e, n) in epochs.iter().enumerate() {
            b.begin_epoch();
            for i in 0..*n {
                let pc = Pc::new(e as u16, i as u16);
                let a = Addr(0x10_0000 + e as u64 * 0x1000 + (i as u64 % 16) * 8);
                if i % 3 == 0 {
                    b.store(pc, a, 8);
                } else {
                    b.load(pc, a, 8);
                }
            }
            b.end_epoch();
        }
        b.end_parallel();
        let program = b.finish();
        let mut cfg = CmpConfig::test_small();
        cfg.max_cycles = 5_000_000;
        let r = CmpSimulator::new(cfg).run(&program);
        prop_assert_eq!(r.violations.total(), 0);
        prop_assert_eq!(r.breakdown.failed, 0);
    }

    #[test]
    fn guaranteed_raw_dependence_is_always_caught(
        work in 200usize..2000,
        load_frac in 0.0f64..0.9,
    ) {
        // Epoch 0 stores X at its very end; epoch 1 loads X early enough
        // that propagation cannot beat it (load position strictly before
        // the store's position in a simultaneous schedule).
        let load_at = (work as f64 * load_frac) as usize;
        let mut b = ProgramBuilder::new("raw");
        b.begin_parallel();
        b.begin_epoch();
        b.int_ops(Pc::new(0, 0), work);
        b.store(Pc::new(0, 1), Addr(0x9000), 8);
        b.end_epoch();
        b.begin_epoch();
        b.int_ops(Pc::new(1, 0), load_at);
        b.load(Pc::new(1, 1), Addr(0x9000), 8);
        b.int_ops(Pc::new(1, 2), work.saturating_sub(load_at));
        b.end_epoch();
        b.end_parallel();
        let program = b.finish();
        let mut cfg = CmpConfig::test_small();
        cfg.max_cycles = 5_000_000;
        let r = CmpSimulator::new(cfg).run(&program);
        prop_assert!(r.violations.primary >= 1,
            "load at {load_at}/{work} must be violated by the end-of-thread store");
        prop_assert!(r.breakdown.failed > 0);
    }

    #[test]
    fn start_table_never_loses_to_restart_all(program in gen_program()) {
        let mut with_table = CmpConfig::test_small();
        with_table.max_cycles = 5_000_000;
        with_table.subthreads.spacing = SpacingPolicy::Every(29);
        let mut restart_all = with_table;
        restart_all.secondary = SecondaryPolicy::RestartAll;
        let a = CmpSimulator::new(with_table).run(&program);
        let b = CmpSimulator::new(restart_all).run(&program);
        // Selective secondary violations can only reduce rewound work in
        // aggregate; allow a small timing-noise margin on total cycles.
        prop_assert!(a.total_cycles as f64 <= b.total_cycles as f64 * 1.10,
            "start-table {} vs restart-all {}", a.total_cycles, b.total_cycles);
    }
}
