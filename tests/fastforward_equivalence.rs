//! Idle-cycle fast-forward is a pure host-time optimization: for any
//! program, machine configuration, and fault plan, the full
//! [`SimReport`] must be byte-identical with `fast_forward` on and off.
//! A deterministic 64-combination grid pins the shapes that exercise
//! every skip source (ROB drain, MSHR fills, homefree-token release,
//! chaos-injector due times), and a property test extends the grid with
//! randomly generated programs.

use proptest::prelude::*;
use subthreads::core::synthetic::{
    independent, latched_rmw, pipeline, shared_dependences, Dependence,
};
use subthreads::core::{
    CmpConfig, CmpSimulator, ExhaustionPolicy, FaultPlan, RunOptions, SecondaryPolicy,
    SpacingPolicy, SubThreadConfig, ALL_FAULT_CLASSES,
};
use subthreads::trace::{Addr, OpSink, Pc, ProgramBuilder, TraceProgram};

/// Runs `program` under `cfg` twice — fast-forward on and off — and
/// asserts the serialized reports are identical.
fn assert_equivalent(cfg: CmpConfig, program: &TraceProgram, plan: Option<FaultPlan>, what: &str) {
    let on = RunOptions { plan, audit: false, oracle: false, ..RunOptions::default() };
    let off = RunOptions { fast_forward: false, ..on.clone() };
    let sim = CmpSimulator::new(cfg);
    let a = serde_json::to_string(&sim.run_with(program, on)).expect("serialize report");
    let b = serde_json::to_string(&sim.run_with(program, off)).expect("serialize report");
    assert_eq!(a, b, "fast-forward changed the report for {what}");
}

fn machines() -> Vec<(&'static str, CmpConfig)> {
    let mut base = CmpConfig::test_small();
    base.max_cycles = 5_000_000;
    let mut all_or_nothing = base;
    all_or_nothing.subthreads = SubThreadConfig::disabled();
    let mut dense_subs = base;
    dense_subs.subthreads = SubThreadConfig {
        contexts: 8,
        spacing: SpacingPolicy::Every(17),
        exhaustion: ExhaustionPolicy::Merge,
    };
    let mut restart_all = base;
    restart_all.secondary = SecondaryPolicy::RestartAll;
    restart_all.subthreads.exhaustion = ExhaustionPolicy::Stop;
    vec![
        ("test_small", base),
        ("all_or_nothing", all_or_nothing),
        ("dense_subthreads", dense_subs),
        ("restart_all", restart_all),
    ]
}

fn programs() -> Vec<(&'static str, TraceProgram)> {
    vec![
        // Miss-bound and dependence-free: the pure fast-forward regime.
        ("independent", independent(4, 400)),
        // Producer/consumer chain: violations, rewinds, stalls.
        ("pipeline", pipeline(4, 500, 0.2, 0.8)),
        // Mid-thread read-modify-write under a latch.
        ("latched_rmw", latched_rmw(4, 400, 0.5)),
        // Two clustered dependences per thread.
        (
            "shared_deps",
            shared_dependences(4, 600, &[Dependence::new(0.3, 0.4), Dependence::new(0.7, 0.6)]),
        ),
    ]
}

/// `None` plus three generated chaos plans (every fault class, due
/// times spread across the run).
fn plans() -> Vec<(&'static str, Option<FaultPlan>)> {
    let mut v: Vec<(&'static str, Option<FaultPlan>)> = vec![("no_faults", None)];
    for (name, seed) in [("chaos_a", 11u64), ("chaos_b", 1234), ("chaos_c", 987_654_321)] {
        v.push((name, Some(FaultPlan::generate(seed, &ALL_FAULT_CLASSES, 40_000, 6))));
    }
    v
}

/// The pinned grid: 4 programs x 4 machines x 4 fault plans = 64
/// combinations, every one compared as a full serialized report.
#[test]
fn fastforward_equivalence_grid() {
    let mut combos = 0usize;
    for (pname, program) in &programs() {
        for (mname, cfg) in machines() {
            for (fname, plan) in plans() {
                assert_equivalent(cfg, program, plan, &format!("{pname}/{mname}/{fname}"));
                combos += 1;
            }
        }
    }
    assert!(combos >= 64, "grid shrank to {combos} combinations");
}

#[derive(Debug, Clone)]
enum GenOp {
    Alu(u8),
    Load(u8),
    Store(u8),
    Branch(bool),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        4 => (1u8..=4).prop_map(GenOp::Alu),
        2 => (0u8..32).prop_map(GenOp::Load),
        1 => (0u8..32).prop_map(GenOp::Store),
        1 => any::<bool>().prop_map(GenOp::Branch),
    ]
}

fn gen_program() -> impl Strategy<Value = TraceProgram> {
    proptest::collection::vec(proptest::collection::vec(gen_op(), 10..200), 2..6).prop_map(
        |epochs| {
            let mut b = ProgramBuilder::new("ff-random");
            b.begin_parallel();
            for (e, ops) in epochs.iter().enumerate() {
                b.begin_epoch();
                for (i, op) in ops.iter().enumerate() {
                    let pc = Pc::new(e as u16, i as u16);
                    match op {
                        GenOp::Alu(n) => b.int_ops(pc, *n as usize),
                        GenOp::Load(slot) => b.load(pc, Addr(0x4000 + 8 * *slot as u64), 8),
                        GenOp::Store(slot) => b.store(pc, Addr(0x4000 + 8 * *slot as u64), 8),
                        GenOp::Branch(t) => b.branch(pc, *t),
                    }
                }
                b.end_epoch();
            }
            b.end_parallel();
            b.finish()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs, optionally under a seeded fault plan, across
    /// two machine shapes each.
    #[test]
    fn fastforward_equivalence_random(program in gen_program(), seed in any::<u64>()) {
        let plan = (seed % 2 == 0)
            .then(|| FaultPlan::generate(seed, &ALL_FAULT_CLASSES, 20_000, 4));
        for (mname, cfg) in [&machines()[0], &machines()[2]] {
            assert_equivalent(*cfg, &program, plan.clone(), &format!("random/{mname}"));
        }
    }
}
