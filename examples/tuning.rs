//! The §3.2 performance-tuning loop, as a programmer would drive it:
//!
//! 1. run the speculatively-parallelized transaction,
//! 2. read the hardware dependence profile (failed cycles per
//!    load-PC/store-PC pair),
//! 3. apply the optimization the top entry points at,
//! 4. repeat.
//!
//! ```sh
//! cargo run --release --example tuning
//! ```

use subthreads::core::{CmpConfig, CmpSimulator, ProfileEntry};
use subthreads::minidb::tpcc::schema::module;
use subthreads::minidb::{OptLevel, Tpcc, TpccConfig, Transaction};
use subthreads::trace::Pc;

/// Maps a profiled PC back to the engine structure it lives in — the
/// "software interface to the list" of §3.1.
fn describe(pc: Option<Pc>) -> String {
    let Some(pc) = pc else { return "<evicted from exposed-load table>".into() };
    let what = match pc.module() {
        0x08 => "engine shared state (log tail / allocator / statistics)",
        module::ITEM => "ITEM b-tree",
        module::DISTRICT => "DISTRICT b-tree",
        module::CUSTOMER => "CUSTOMER b-tree",
        module::STOCK => "STOCK b-tree",
        module::ORDERS => "ORDER b-tree",
        module::NEW_ORDER => "NEW-ORDER b-tree",
        module::ORDER_LINE => "ORDER-LINE b-tree",
        module::TXN_NEW_ORDER => "NEW ORDER transaction code",
        _ => "other",
    };
    format!("{pc} ({what})")
}

fn show_profile(profile: &[ProfileEntry]) {
    for e in profile.iter().take(3) {
        println!(
            "      {:>9} failed cycles, {:>3} violations: load {} <- store {}",
            e.failed_cycles,
            e.violations,
            describe(e.load_pc),
            describe(e.store_pc)
        );
    }
}

fn main() {
    let machine = {
        let mut c = CmpConfig::paper_default();
        c.max_cycles = 2_000_000_000;
        c
    };

    let mut speedups = Vec::new();
    for (name, opts) in OptLevel::tuning_steps() {
        // Build the engine at this optimization level and record the
        // parallelized transaction. (A fresh database per step keeps the
        // runs comparable.) Paper scale: the tuning dynamics need
        // full-size threads, so this example takes ~10 seconds.
        let mut cfg = TpccConfig::paper();
        cfg.opts = opts;
        let mut tpcc = Tpcc::new(cfg);
        let program = tpcc.record(Transaction::NewOrder, 3);

        // Reference: the same engine level, epochs serialized.
        let serial = subthreads::core::experiment::serialize_program(&program);
        let seq_cycles = CmpSimulator::new(machine).run(&serial).total_cycles;

        let report = CmpSimulator::new(machine).run(&program);
        let speedup = seq_cycles as f64 / report.total_cycles as f64;
        println!(
            "\n[{name}] {} cycles, speedup {speedup:.2}x, {} violations",
            report.total_cycles,
            report.violations.total()
        );
        println!("   profiler says the most harmful dependences are:");
        show_profile(&report.profile);
        speedups.push((name, speedup));
    }

    println!("\ntuning curve:");
    for (name, s) in &speedups {
        let bars = "#".repeat((s * 20.0) as usize);
        println!("  {name:<28} {s:>5.2}x {bars}");
    }
}
