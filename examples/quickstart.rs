//! Quickstart: record a TPC-C NEW ORDER transaction and simulate it on
//! the paper's 4-CPU machine, with and without sub-thread support.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use subthreads::core::{CmpConfig, CmpSimulator, SubThreadConfig};
use subthreads::minidb::{Tpcc, TpccConfig, Transaction};

fn main() {
    // 1. Load a TPC-C database: a full single-warehouse population, as
    //    in the paper (a couple of seconds; `TpccConfig::test()` is the
    //    millisecond-fast variant used by the test suite).
    let mut tpcc = Tpcc::new(TpccConfig::paper());

    // 2. Execute two NEW ORDER transactions, recording every dynamic
    //    instruction into a trace program. The order-line loop is marked
    //    parallel, so each iteration becomes a speculative thread.
    let program = tpcc.record(Transaction::NewOrder, 2);
    let stats = program.stats();
    println!(
        "recorded {} instructions, {} speculative threads averaging {:.0} instructions, \
         {:.0}% coverage",
        stats.total_ops,
        stats.epochs,
        stats.avg_epoch_ops(),
        100.0 * stats.coverage()
    );

    // 3. Simulate on the paper's machine: 4 CPUs, 8 sub-threads per
    //    speculative thread checkpointed every 5000 instructions.
    let mut config = CmpConfig::paper_default();
    config.max_cycles = 1_000_000_000;
    let with_subthreads = CmpSimulator::new(config).run(&program);

    // 4. Same machine, sub-threads disabled: all-or-nothing TLS.
    let mut no_subthreads = config;
    no_subthreads.subthreads = SubThreadConfig::disabled();
    let all_or_nothing = CmpSimulator::new(no_subthreads).run(&program);

    println!("\nwith sub-threads (baseline):");
    println!("{with_subthreads}");
    println!("\nall-or-nothing TLS:");
    println!("{all_or_nothing}");

    println!(
        "\nsub-threads turned {} failed CPU-cycles into {} — a {:.2}x end-to-end win",
        all_or_nothing.breakdown.failed,
        with_subthreads.breakdown.failed,
        with_subthreads.speedup_vs(&all_or_nothing),
    );
}
