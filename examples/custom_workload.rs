//! Using the simulator outside TPC-C: hand-build a speculative workload
//! with [`ProgramBuilder`] and explore how dependence position interacts
//! with sub-thread checkpoints.
//!
//! The paper closes by recommending sub-threads for "large and dependent
//! speculative threads in other application domains as well" — this
//! example is the template for doing exactly that: synthesize (or record)
//! your workload as a trace program, mark the parallel loops, and measure.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use subthreads::core::synthetic;
use subthreads::core::{CmpConfig, CmpSimulator, SubThreadConfig};

fn main() {
    let machine = {
        let mut c = CmpConfig::paper_default();
        c.max_cycles = 1_000_000_000;
        c
    };
    let mut all_or_nothing = machine;
    all_or_nothing.subthreads = SubThreadConfig::disabled();

    println!("4 threads x 50k instructions; value passed thread-to-thread");
    println!(
        "{:<28} {:>14} {:>14} {:>8}",
        "dependence placement", "all-or-nothing", "sub-threads", "gain"
    );
    for (label, load_at, store_at) in [
        ("early load  -> early store", 0.05, 0.10),
        ("mid load    -> late store ", 0.50, 0.90),
        ("late load   -> late store ", 0.85, 0.90),
        ("early load  -> late store ", 0.05, 0.90),
    ] {
        let p = synthetic::pipeline(4, 50_000, load_at, store_at);
        let aon = CmpSimulator::new(all_or_nothing).run(&p);
        let sub = CmpSimulator::new(machine).run(&p);
        println!(
            "{label:<28} {:>12} cy {:>12} cy {:>7.2}x",
            aon.total_cycles,
            sub.total_cycles,
            aon.total_cycles as f64 / sub.total_cycles as f64
        );
    }

    println!(
        "\nTakeaways (matching the paper): sub-threads pay off most when the \
         consuming load sits late in the thread (the rewind is contained to \
         one checkpoint span); an early load followed by a late producer \
         store is the one shape checkpoints cannot fix — that dependence \
         must be removed in software (Figure 2's tuning process)."
    );
}
