//! Demonstrates the chaos harness end to end through the public API:
//! record a TPC-C transaction, inject a spurious violation, and show
//! that (a) an intact protocol absorbs it, while (b) a deliberately
//! sabotaged rewind (the L2 state wash is skipped) is caught by the
//! runtime invariant auditor — not by a downstream assertion.
//!
//! Run with: `cargo run --release --example chaos_sabotage`

use subthreads::core::{CmpConfig, CmpSimulator, FaultClass, FaultPlan, RunOptions};
use subthreads::minidb::{OptLevel, Tpcc, TpccConfig, Transaction};

fn main() {
    let mut cfg = TpccConfig::test();
    cfg.opts = OptLevel::none();
    let mut tpcc = Tpcc::new(cfg);
    let program = tpcc.record(Transaction::NewOrder, 1);

    let sim = CmpSimulator::new(CmpConfig::test_small());
    // A long arming window: the spurious violation fires at the first
    // cycle a speculative epoch exists, wherever that falls.
    let plan = FaultPlan::single(FaultClass::SpuriousPrimary, 1, 1_000_000);

    let healthy = sim.run_with(&program, RunOptions::chaos(plan.clone()));
    println!(
        "intact protocol:    {} faults applied, {} audit failures, {} epochs committed",
        healthy.faults.applied(),
        healthy.audit_failures.len(),
        healthy.committed_epochs,
    );
    assert!(healthy.audit_failures.is_empty());
    assert_eq!(healthy.faults.applied(), 1);

    let sabotaged =
        sim.run_with(&program, RunOptions { sabotage_rewind: true, ..RunOptions::chaos(plan) });
    println!(
        "sabotaged rewind:   {} faults applied, {} audit failures",
        sabotaged.faults.applied(),
        sabotaged.audit_failures.len(),
    );
    for f in sabotaged.audit_failures.iter().take(3) {
        println!("  caught: {f}");
    }
    assert!(!sabotaged.audit_failures.is_empty(), "a sabotaged rewind must not run undetected");
}
