//! The paper's motivating use case: cutting the latency of individual
//! database transactions with idle CPUs.
//!
//! Runs every TPC-C transaction through the SEQUENTIAL and BASELINE
//! configurations and reports the latency improvement per transaction
//! class — the view a DBMS would use to decide *when* to apply TLS
//! (paper §3.3: use idle CPUs, prioritize latency-sensitive and
//! lock-holding transactions).
//!
//! ```sh
//! cargo run --release --example transaction_latency        # paper scale, ~1 min
//! cargo run --release --example transaction_latency test   # toy scale (shapes degrade)
//! ```

use subthreads::core::experiment::{run_experiment, BenchmarkPrograms, ExperimentKind};
use subthreads::minidb::{Tpcc, TpccConfig, Transaction};

fn main() {
    let test_scale = std::env::args().any(|a| a == "test");
    let cfg = if test_scale { TpccConfig::test() } else { TpccConfig::paper() };
    let machine = {
        let mut c = subthreads::core::CmpConfig::paper_default();
        c.max_cycles = 4_000_000_000;
        c
    };

    println!(
        "{:<16} {:>14} {:>14} {:>9}  note",
        "transaction", "sequential", "TLS baseline", "speedup"
    );
    for txn in Transaction::ALL {
        let (plain, tls) = Tpcc::record_pair(&cfg, txn, 1);
        let progs = BenchmarkPrograms { plain, tls };
        let seq = run_experiment(ExperimentKind::Sequential, &machine, &progs);
        let tls_run = run_experiment(ExperimentKind::Baseline, &machine, &progs);
        let speedup = seq.total_cycles as f64 / tls_run.total_cycles as f64;
        let note = match txn {
            Transaction::Payment | Transaction::OrderStatus => {
                "little parallelism — run it sequentially"
            }
            Transaction::DeliveryOuter => "hold-lock-and-release-fast candidate",
            _ => "latency-sensitive candidate",
        };
        println!(
            "{:<16} {:>11} cy {:>11} cy {:>8.2}x  {}",
            txn.label(),
            seq.total_cycles,
            tls_run.total_cycles,
            speedup,
            note
        );
    }
    println!(
        "\nPer §3.3, a DBMS would enable TLS for the transactions that speed up \
         whenever CPUs are idle, and fall back to one-transaction-per-CPU when \
         the system is loaded."
    );
}
