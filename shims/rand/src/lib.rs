//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors a minimal, fully deterministic implementation of the
//! small `rand` surface it actually uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! `Range`/`RangeInclusive` bounds.
//!
//! The generator is SplitMix64 — a well-tested 64-bit mixer with full
//! period over its state. It is *not* the same stream as upstream
//! `rand::rngs::StdRng` (ChaCha12), so seeded draws differ from what the
//! real crate would produce; everything in this workspace treats seeded
//! randomness as "deterministic per seed", never "these exact constants".

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can seed an RNG. Only the `seed_from_u64` entry point is
/// provided; the byte-array seeding of the real crate is unused here.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling support: the subset of the real `Rng` extension trait used by
/// this workspace.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a value of a type with a canonical full-range distribution.
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::from_u64_lossy(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Integer types that [`Rng::gen_range`] can produce.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `u64` (values are unsigned in practice).
    fn to_u64(self) -> u64;
    /// Narrows from `u64`; the caller guarantees the value fits.
    fn from_u64(v: u64) -> Self;
    /// Truncating conversion for full-range sampling.
    fn from_u64_lossy(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
            fn from_u64_lossy(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi - lo + 1; // lo == 0 && hi == u64::MAX never occurs here
        if span == 0 {
            T::from_u64(rng.next_u64())
        } else {
            T::from_u64(lo + rng.next_u64() % span)
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10..=100u64);
            assert!((10..=100).contains(&v));
            let w: usize = r.gen_range(3..9);
            assert!((3..9).contains(&w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u32> = (0..8).map(|_| a.gen_range(0..u32::MAX)).collect();
        let bv: Vec<u32> = (0..8).map(|_| b.gen_range(0..u32::MAX)).collect();
        assert_ne!(av, bv);
    }
}
