//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! shim's JSON-native traits.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// A serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// The usual `serde_json` result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    let v = serde::parse(&compact)?;
    let mut out = String::new();
    v.write(&mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = serde::parse(s)?;
    Ok(T::deserialize(&v)?)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: u64,
        y: Option<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Dot,
        Circle(u32),
        Rect(u32, u32),
        Label { text: String, size: u8 },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrap(u16);

    #[test]
    fn struct_round_trip() {
        let p = Point { x: u64::MAX - 3, y: Some("hi\n".into()) };
        let s = super::to_string(&p).unwrap();
        assert_eq!(s, format!("{{\"x\":{},\"y\":\"hi\\n\"}}", u64::MAX - 3));
        assert_eq!(super::from_str::<Point>(&s).unwrap(), p);
        let none = Point { x: 0, y: None };
        let s = super::to_string(&none).unwrap();
        assert_eq!(s, "{\"x\":0,\"y\":null}");
        assert_eq!(super::from_str::<Point>(&s).unwrap(), none);
    }

    #[test]
    fn enum_round_trip_all_shapes() {
        for (v, json) in [
            (Shape::Dot, r#""Dot""#.to_string()),
            (Shape::Circle(9), r#"{"Circle":9}"#.to_string()),
            (Shape::Rect(3, 4), r#"{"Rect":[3,4]}"#.to_string()),
            (
                Shape::Label { text: "t".into(), size: 2 },
                r#"{"Label":{"text":"t","size":2}}"#.to_string(),
            ),
        ] {
            let s = super::to_string(&v).unwrap();
            assert_eq!(s, json);
            assert_eq!(super::from_str::<Shape>(&s).unwrap(), v);
        }
    }

    #[test]
    fn newtype_is_transparent() {
        let s = super::to_string(&Wrap(77)).unwrap();
        assert_eq!(s, "77");
        assert_eq!(super::from_str::<Wrap>(&s).unwrap(), Wrap(77));
    }

    #[test]
    fn pretty_prints_indented() {
        let p = Point { x: 1, y: None };
        let s = super::to_string_pretty(&p).unwrap();
        assert!(s.contains("\n  \"x\": 1"), "{s}");
    }

    #[test]
    fn vec_and_nested() {
        let v = vec![Shape::Dot, Shape::Circle(1)];
        let s = super::to_string(&v).unwrap();
        assert_eq!(super::from_str::<Vec<Shape>>(&s).unwrap(), v);
    }
}
