//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the offline serde
//! shim.
//!
//! No `syn`/`quote` (nothing can be downloaded in this environment), so
//! the macro walks the `proc_macro::TokenStream` directly. It supports the
//! shapes this workspace actually derives on:
//!
//! * structs with named fields, tuple/newtype structs, unit structs;
//! * enums with unit, newtype, tuple and struct variants;
//!
//! with serde's external-tagging JSON convention. Generics and
//! `#[serde(...)]` attributes are deliberately unsupported — the
//! workspace uses neither.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

enum Fields {
    Unit,
    /// Tuple fields; the count is all codegen needs.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

/// Derives `serde::Serialize` (JSON text writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (from a parsed JSON `Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim does not support generic types (deriving on {name})");
        }
    }
    // Skip a `where` clause if one ever appears (none in this workspace).
    while i < tokens.len()
        && !matches!(&tokens[i], TokenTree::Group(_))
        && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ';')
    {
        i += 1;
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                None | Some(TokenTree::Punct(_)) => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(other) => panic!("serde_derive: unexpected struct body {other}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("serde_derive: expected enum body for {name}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: cannot derive on `{other}` items"),
    }
}

/// Advances past leading attributes (`#[...]`, including doc comments,
/// which reach the macro as `#[doc = ...]`) and visibility qualifiers.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the `[...]` group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` etc.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list on commas that sit outside `<...>` angle
/// brackets (group nesting is already handled by the token tree).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth: i32 = 0;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().unwrap().push(t);
    }
    if out.last().map(Vec::is_empty).unwrap_or(false) {
        out.pop();
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|field| {
            let mut i = 0;
            skip_attrs_and_vis(&field, &mut i);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|variant| {
            let mut i = 0;
            skip_attrs_and_vis(&variant, &mut i);
            let name = match variant.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other:?}"),
            };
            i += 1;
            let fields = match variant.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    panic!("serde_derive shim does not support explicit discriminants ({name})")
                }
                _ => Fields::Unit,
            };
            (name, fields)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "out.push_str(\"null\");".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0, out);".to_string(),
                Fields::Tuple(n) => {
                    let mut b = String::from("out.push('[');");
                    for k in 0..*n {
                        if k > 0 {
                            b.push_str("out.push(',');");
                        }
                        b.push_str(&format!("::serde::Serialize::serialize(&self.{k}, out);"));
                    }
                    b.push_str("out.push(']');");
                    b
                }
                Fields::Named(fields) => ser_named_body(fields, "&self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\
                   fn serialize(&self, out: &mut ::std::string::String) {{ {body} }}\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => out.push_str(\"\\\"{vname}\\\"\"),"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => {{\
                           out.push_str(\"{{\\\"{vname}\\\":\");\
                           ::serde::Serialize::serialize(__f0, out);\
                           out.push('}}');\
                         }},"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut b = format!(
                            "{name}::{vname}({}) => {{\
                               out.push_str(\"{{\\\"{vname}\\\":[\");",
                            binders.join(", ")
                        );
                        for (k, bind) in binders.iter().enumerate() {
                            if k > 0 {
                                b.push_str("out.push(',');");
                            }
                            b.push_str(&format!("::serde::Serialize::serialize({bind}, out);"));
                        }
                        b.push_str("out.push(']');out.push('}');},");
                        arms.push_str(&b);
                    }
                    Fields::Named(fnames) => {
                        let binders = fnames.join(", ");
                        let body = ser_named_body(fnames, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binders} }} => {{\
                               out.push_str(\"{{\\\"{vname}\\\":\");\
                               {body}\
                               out.push('}}');\
                             }},"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                   fn serialize(&self, out: &mut ::std::string::String) {{\
                     match self {{ {arms} }}\
                   }}\
                 }}"
            )
        }
    }
}

/// `{"a":...,"b":...}` over named fields; `prefix` is `&self.` for
/// structs and `` for enum-variant binders.
fn ser_named_body(fields: &[String], prefix: &str) -> String {
    let mut b = String::from("out.push('{');");
    for (k, f) in fields.iter().enumerate() {
        if k > 0 {
            b.push_str("out.push(',');");
        }
        b.push_str(&format!("out.push_str(\"\\\"{f}\\\":\");"));
        b.push_str(&format!("::serde::Serialize::serialize({prefix}{f}, out);"));
    }
    b.push_str("out.push('}');");
    b
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!(
                "match v {{\
                   ::serde::Value::Null => ::std::result::Result::Ok({name}),\
                   _ => ::std::result::Result::Err(::serde::DeError::expected(\"null\", \"{name}\")),\
                 }}"
            ),
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::from_value(v)?))"
            ),
            Fields::Tuple(n) => de_tuple_body(name, name, *n, "v"),
            Fields::Named(fields) => de_named_body(name, name, fields, "v"),
        },
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let ctor = de_tuple_body(name, &format!("{name}::{vname}"), *n, "__inner");
                        tagged_arms.push_str(&format!("\"{vname}\" => {{ {ctor} }},"));
                    }
                    Fields::Named(fnames) => {
                        let ctor =
                            de_named_body(name, &format!("{name}::{vname}"), fnames, "__inner");
                        tagged_arms.push_str(&format!("\"{vname}\" => {{ {ctor} }},"));
                    }
                }
            }
            format!(
                "match v {{\
                   ::serde::Value::Str(__s) => match __s.as_str() {{\
                     {unit_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError(\
                       ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\
                   }},\
                   ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\
                     let (__tag, __inner) = &__pairs[0];\
                     match __tag.as_str() {{\
                       {tagged_arms}\
                       __other => ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\
                     }}\
                   }},\
                   _ => ::std::result::Result::Err(::serde::DeError::expected(\
                     \"variant string or single-key object\", \"{name}\")),\
                 }}"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
           fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\
             {body}\
           }}\
         }}"
    )
}

fn de_named_body(ty: &str, ctor: &str, fields: &[String], src: &str) -> String {
    let mut b = format!(
        "let __obj = {src}.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{ty}\"))?;\
         ::std::result::Result::Ok({ctor} {{"
    );
    for f in fields {
        b.push_str(&format!(
            "{f}: ::serde::from_value(::serde::obj_get(__obj, \"{f}\", \"{ty}\")?)?,"
        ));
    }
    b.push_str("})");
    b
}

fn de_tuple_body(ty: &str, ctor: &str, n: usize, src: &str) -> String {
    let mut b = format!(
        "let __arr = {src}.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{ty}\"))?;\
         if __arr.len() != {n} {{\
           return ::std::result::Result::Err(::serde::DeError::expected(\"{n}-element array\", \"{ty}\"));\
         }}\
         ::std::result::Result::Ok({ctor}("
    );
    for k in 0..n {
        b.push_str(&format!("::serde::from_value(&__arr[{k}])?,"));
    }
    b.push_str("))");
    b
}
