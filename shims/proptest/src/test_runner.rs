//! Test configuration, the RNG-carrying runner, and the shrink loop.

use crate::strategy::Strategy;
use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum shrink iterations after a failure.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 4096 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (everything else default).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Self::default() }
    }
}

/// A failed property: the message from `prop_assert!`/`prop_assert_eq!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Carries the deterministic RNG that strategies draw from.
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    fn new(seed: u64) -> Self {
        TestRunner { state: seed }
    }

    /// Next 64 uniformly distributed bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Runs `test` against `config.cases` generated inputs, shrinking on the
/// first failure and panicking with the minimal failing case's message.
pub fn run_test<S, F>(config: ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5EED_CAFE_F00D_D1CE);
    let mut runner = TestRunner::new(seed);

    for case in 0..config.cases {
        let mut tree = strategy.new_tree(&mut runner);
        let first = match test(tree.current()) {
            Ok(()) => continue,
            Err(e) => e,
        };

        // Shrink: simplify while the test keeps failing; when a
        // simplification makes it pass, back out one step and move on.
        let mut best = first;
        let mut shrinks = 0u32;
        for _ in 0..config.max_shrink_iters {
            if !tree.simplify() {
                break;
            }
            match test(tree.current()) {
                Err(e) => {
                    best = e;
                    shrinks += 1;
                }
                Ok(()) => {
                    if !tree.complicate() {
                        break;
                    }
                }
            }
        }
        panic!("proptest case #{case} failed (after {shrinks} successful shrink steps): {best}");
    }
}
