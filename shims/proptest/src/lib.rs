//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates registry, so the workspace vendors
//! a compact property-testing engine with the same spelling as the real
//! crate for everything the tests here use:
//!
//! * [`strategy::Strategy`] / [`strategy::ValueTree`] with genuine
//!   shrinking (binary search on numbers, length- then element-wise
//!   shrinking on vectors, delegation through `prop_map`);
//! * strategies for integer/float ranges, [`arbitrary::any`], tuples up
//!   to arity 6, [`collection::vec`], and weighted unions;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Generation is deterministic: a fixed seed (overridable via the
//! `PROPTEST_SEED` environment variable) drives a SplitMix64 stream, so
//! failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import used by every test: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: `proptest! { #![proptest_config(...)] fn
/// name(x in strategy, ...) { body } ... }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_test(
                    __config,
                    ($($strat,)+),
                    |($($arg,)+)| { $body; ::std::result::Result::Ok(()) },
                );
            }
        )*
    };
}

/// Combines strategies, optionally weighted: `prop_oneof![3 => a, 1 => b]`
/// or `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let __u = $crate::strategy::Union::empty();
        $(let __u = __u.or($weight, $strat);)+
        __u
    }};
    ($($strat:expr),+ $(,)?) => {{
        let __u = $crate::strategy::Union::empty();
        $(let __u = __u.or(1u32, $strat);)+
        __u
    }};
}

/// Like `assert!` but fails the property (and shrinks) instead of
/// panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}
