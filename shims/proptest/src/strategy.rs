//! Strategies (value generators) and value trees (shrinkable samples).

use crate::test_runner::TestRunner;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of shrinkable values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one shrinkable sample.
    fn new_tree(&self, runner: &mut TestRunner) -> Box<dyn ValueTree<Value = Self::Value>>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }
}

/// One generated sample plus its shrink state.
///
/// `simplify` moves to a strictly "smaller" candidate and returns whether
/// it could; `complicate` backs out the most recent simplification (used
/// when that simplification made the failing test pass). Implementations
/// guarantee the simplify/complicate walk terminates.
pub trait ValueTree {
    /// The value type.
    type Value;

    /// The current candidate value.
    fn current(&self) -> Self::Value;

    /// Attempts to move to a simpler candidate.
    fn simplify(&mut self) -> bool;

    /// Attempts to back out the last simplification.
    fn complicate(&mut self) -> bool;
}

impl<V> ValueTree for Box<dyn ValueTree<Value = V>> {
    type Value = V;
    fn current(&self) -> V {
        (**self).current()
    }
    fn simplify(&mut self) -> bool {
        (**self).simplify()
    }
    fn complicate(&mut self) -> bool {
        (**self).complicate()
    }
}

// ---------------------------------------------------------------------------
// Just
// ---------------------------------------------------------------------------

/// A strategy that always yields a fixed value (no shrinking).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn new_tree(&self, _runner: &mut TestRunner) -> Box<dyn ValueTree<Value = T>> {
        Box::new(JustTree(self.0.clone()))
    }
}

struct JustTree<T: Clone>(T);

impl<T: Clone> ValueTree for JustTree<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
    fn simplify(&mut self) -> bool {
        false
    }
    fn complicate(&mut self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Integer ranges
// ---------------------------------------------------------------------------

/// Integer types range strategies can produce.
pub trait IntValue: Copy + 'static {
    /// Widens to the `u64` shrink domain.
    fn to_u64(self) -> u64;
    /// Narrows back; the value is known to fit.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_int_value {
    ($($t:ty),*) => {$(
        impl IntValue for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_int_value!(u8, u16, u32, u64, usize);

/// Shrinks an integer toward `lo` by binary search. `complicate` restores
/// the previous failing value and fences the low bound so the walk
/// terminates.
struct IntTree<T: IntValue> {
    lo: u64,
    curr: u64,
    prev: Option<u64>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: IntValue> IntTree<T> {
    fn new(lo: u64, curr: u64) -> Self {
        IntTree { lo, curr, prev: None, _marker: std::marker::PhantomData }
    }
}

impl<T: IntValue> ValueTree for IntTree<T> {
    type Value = T;
    fn current(&self) -> T {
        T::from_u64(self.curr)
    }
    fn simplify(&mut self) -> bool {
        if self.curr > self.lo {
            self.prev = Some(self.curr);
            self.curr = self.lo + (self.curr - self.lo) / 2;
            true
        } else {
            false
        }
    }
    fn complicate(&mut self) -> bool {
        match self.prev.take() {
            Some(p) if p > self.curr => {
                self.lo = self.curr + 1;
                self.curr = p;
                true
            }
            _ => false,
        }
    }
}

fn sample_in(runner: &mut TestRunner, lo: u64, hi_inclusive: u64) -> u64 {
    let span = hi_inclusive.wrapping_sub(lo).wrapping_add(1);
    if span == 0 {
        runner.next_u64()
    } else {
        lo + runner.below(span)
    }
}

impl<T: IntValue> Strategy for Range<T> {
    type Value = T;
    fn new_tree(&self, runner: &mut TestRunner) -> Box<dyn ValueTree<Value = T>> {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty range strategy");
        let v = sample_in(runner, lo, hi - 1);
        Box::new(IntTree::<T>::new(lo, v))
    }
}

impl<T: IntValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_tree(&self, runner: &mut TestRunner) -> Box<dyn ValueTree<Value = T>> {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "empty range strategy");
        let v = sample_in(runner, lo, hi);
        Box::new(IntTree::<T>::new(lo, v))
    }
}

// ---------------------------------------------------------------------------
// Float ranges
// ---------------------------------------------------------------------------

struct FloatTree {
    lo: f64,
    curr: f64,
    prev: Option<f64>,
    done: bool,
}

impl ValueTree for FloatTree {
    type Value = f64;
    fn current(&self) -> f64 {
        self.curr
    }
    fn simplify(&mut self) -> bool {
        if self.done || (self.curr - self.lo).abs() < 1e-9 {
            return false;
        }
        self.prev = Some(self.curr);
        self.curr = self.lo + (self.curr - self.lo) / 2.0;
        true
    }
    fn complicate(&mut self) -> bool {
        match self.prev.take() {
            Some(p) => {
                self.curr = p;
                self.done = true;
                true
            }
            None => false,
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_tree(&self, runner: &mut TestRunner) -> Box<dyn ValueTree<Value = f64>> {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (runner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        Box::new(FloatTree { lo: self.start, curr: v, prev: None, done: false })
    }
}

// ---------------------------------------------------------------------------
// Bool
// ---------------------------------------------------------------------------

/// The `any::<bool>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

struct BoolTree {
    curr: bool,
    flipped: bool,
    done: bool,
}

impl ValueTree for BoolTree {
    type Value = bool;
    fn current(&self) -> bool {
        self.curr
    }
    fn simplify(&mut self) -> bool {
        if self.curr && !self.done {
            self.curr = false;
            self.flipped = true;
            true
        } else {
            false
        }
    }
    fn complicate(&mut self) -> bool {
        if self.flipped {
            self.curr = true;
            self.flipped = false;
            self.done = true;
            true
        } else {
            false
        }
    }
}

impl Strategy for BoolStrategy {
    type Value = bool;
    fn new_tree(&self, runner: &mut TestRunner) -> Box<dyn ValueTree<Value = bool>> {
        Box::new(BoolTree { curr: runner.next_u64() & 1 == 1, flipped: false, done: false })
    }
}

// ---------------------------------------------------------------------------
// prop_map
// ---------------------------------------------------------------------------

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    S::Value: 'static,
    O: 'static,
    F: Fn(S::Value) -> O + Clone + 'static,
{
    type Value = O;
    fn new_tree(&self, runner: &mut TestRunner) -> Box<dyn ValueTree<Value = O>> {
        Box::new(MapTree { inner: self.inner.new_tree(runner), f: self.f.clone() })
    }
}

struct MapTree<I, F> {
    inner: Box<dyn ValueTree<Value = I>>,
    f: F,
}

impl<I, O, F: Fn(I) -> O> ValueTree for MapTree<I, F> {
    type Value = O;
    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }
    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }
    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($TreeName:ident; $($S:ident : $idx:tt),+) => {
        impl<$($S,)+> Strategy for ($($S,)+)
        where
            $($S: Strategy, $S::Value: 'static,)+
        {
            type Value = ($($S::Value,)+);
            fn new_tree(
                &self,
                runner: &mut TestRunner,
            ) -> Box<dyn ValueTree<Value = Self::Value>> {
                Box::new($TreeName {
                    children: ($(self.$idx.new_tree(runner),)+),
                    cursor: 0,
                    last: usize::MAX,
                })
            }
        }

        struct $TreeName<$($S,)+> {
            children: ($(Box<dyn ValueTree<Value = $S>>,)+),
            cursor: usize,
            last: usize,
        }

        impl<$($S,)+> ValueTree for $TreeName<$($S,)+> {
            type Value = ($($S,)+);
            fn current(&self) -> Self::Value {
                ($(self.children.$idx.current(),)+)
            }
            fn simplify(&mut self) -> bool {
                $(
                    if self.cursor == $idx {
                        if self.children.$idx.simplify() {
                            self.last = $idx;
                            return true;
                        }
                        self.cursor += 1;
                    }
                )+
                false
            }
            fn complicate(&mut self) -> bool {
                $(
                    if self.last == $idx {
                        return self.children.$idx.complicate();
                    }
                )+
                false
            }
        }
    };
}

tuple_strategy!(Tuple1Tree; S0: 0);
tuple_strategy!(Tuple2Tree; S0: 0, S1: 1);
tuple_strategy!(Tuple3Tree; S0: 0, S1: 1, S2: 2);
tuple_strategy!(Tuple4Tree; S0: 0, S1: 1, S2: 2, S3: 3);
tuple_strategy!(Tuple5Tree; S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
tuple_strategy!(Tuple6Tree; S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);

// ---------------------------------------------------------------------------
// Union (prop_oneof!)
// ---------------------------------------------------------------------------

/// A weighted choice among strategies of a common value type.
pub struct Union<T> {
    arms: Vec<(u32, Rc<dyn Strategy<Value = T>>)>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Union<T> {
    /// A union with no arms yet (builder for `prop_oneof!`).
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds an arm with the given weight.
    pub fn or<S>(mut self, weight: u32, strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        assert!(weight > 0, "prop_oneof! weights must be positive");
        self.arms.push((weight, Rc::new(strategy)));
        self
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn new_tree(&self, runner: &mut TestRunner) -> Box<dyn ValueTree<Value = T>> {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = runner.below(total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.new_tree(runner);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}
