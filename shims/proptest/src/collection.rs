//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::{Strategy, ValueTree};
use crate::test_runner::TestRunner;
use std::ops::{Range, RangeInclusive};

/// A length constraint for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Generates `Vec`s whose length lies in `size` with elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for VecStrategy<S>
where
    S: Strategy,
    S::Value: 'static,
{
    type Value = Vec<S::Value>;
    fn new_tree(&self, runner: &mut TestRunner) -> Box<dyn ValueTree<Value = Self::Value>> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + runner.below(span) as usize;
        let children = (0..len).map(|_| self.element.new_tree(runner)).collect();
        Box::new(VecTree {
            children,
            removed: Vec::new(),
            min: self.size.min,
            len_done: false,
            cursor: 0,
            last: Last::None,
        })
    }
}

enum Last {
    None,
    PoppedLen,
    Element(usize),
}

struct VecTree<V> {
    children: Vec<Box<dyn ValueTree<Value = V>>>,
    removed: Vec<Box<dyn ValueTree<Value = V>>>,
    min: usize,
    len_done: bool,
    cursor: usize,
    last: Last,
}

impl<V> ValueTree for VecTree<V> {
    type Value = Vec<V>;

    fn current(&self) -> Vec<V> {
        self.children.iter().map(|c| c.current()).collect()
    }

    fn simplify(&mut self) -> bool {
        // Phase 1: drop elements from the tail down to the minimum
        // length; phase 2: shrink surviving elements left to right.
        if !self.len_done && self.children.len() > self.min {
            self.removed.push(self.children.pop().expect("len > min >= 0"));
            self.last = Last::PoppedLen;
            return true;
        }
        self.len_done = true;
        while self.cursor < self.children.len() {
            if self.children[self.cursor].simplify() {
                self.last = Last::Element(self.cursor);
                return true;
            }
            self.cursor += 1;
        }
        false
    }

    fn complicate(&mut self) -> bool {
        match std::mem::replace(&mut self.last, Last::None) {
            Last::PoppedLen => {
                let c = self.removed.pop().expect("popped element must exist");
                self.children.push(c);
                // The dropped tail element was load-bearing; stop
                // shrinking the length and move on to elements.
                self.len_done = true;
                true
            }
            Last::Element(i) => self.children[i].complicate(),
            Last::None => false,
        }
    }
}
