//! `any::<T>()` — canonical full-range strategies per type.

use crate::strategy::{BoolStrategy, Strategy};
use std::ops::RangeInclusive;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The strategy type `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> Self::Strategy {
        BoolStrategy
    }
}
