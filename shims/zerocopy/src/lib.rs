//! Offline stand-in for the `zerocopy` crate.
//!
//! The build environment has no reachable crates registry, so this shim
//! implements exactly the API surface the workspace uses: the
//! [`FromBytes`] / [`IntoBytes`] / [`Immutable`] / [`KnownLayout`] marker
//! traits, their derives (re-exported from `zerocopy_derive`), and the
//! checked slice-casting entry points the snapshot store's mmap read path
//! is built on.
//!
//! # Safety contract
//!
//! Unlike the real crate, the markers here are *safe* traits so that
//! `#![forbid(unsafe_code)]` crates (tls-trace) can derive them; the
//! soundness obligation moves to the implementor and is discharged by
//! convention: **only derive these traits** — the derives are restricted
//! to non-generic items, and every deriving type in this workspace backs
//! the derive with compile-time layout assertions (size, alignment and
//! field offsets) next to its definition. The casting functions in this
//! module then re-check everything checkable at runtime (size, alignment,
//! length divisibility) before the single `unsafe` pointer cast each
//! performs, so a misuse fails closed with a [`CastError`] rather than
//! producing a misaligned or out-of-bounds reference.

pub use zerocopy_derive::{FromBytes, Immutable, IntoBytes, KnownLayout};

/// Marker: every bit pattern of `size_of::<Self>()` bytes is a valid
/// value of `Self` (all-integer field types, no padding, no niches).
pub trait FromBytes: Sized {}

/// Marker: the bytes of `Self` fully determine its value — no padding
/// bytes, so viewing a value as `&[u8]` never exposes uninitialized
/// memory.
pub trait IntoBytes: Sized {}

/// Marker: `Self` contains no interior mutability (`UnsafeCell`), so a
/// shared reference really is read-only.
pub trait Immutable {}

/// Marker: the layout (size and alignment) of `Self` is fixed by a
/// `repr(C)` definition and is the same on every target.
pub trait KnownLayout {}

/// Why a byte-slice cast was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastError {
    /// The source pointer is not aligned to `align_of::<T>()`.
    Misaligned {
        /// The required alignment.
        align: usize,
        /// The offending address modulo the required alignment.
        offset: usize,
    },
    /// The source length is not a multiple of `size_of::<T>()`.
    SizeMismatch {
        /// The record size in bytes.
        record: usize,
        /// The source length in bytes.
        len: usize,
    },
}

impl core::fmt::Display for CastError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CastError::Misaligned { align, offset } => {
                write!(f, "source is {offset} bytes past an {align}-byte alignment boundary")
            }
            CastError::SizeMismatch { record, len } => {
                write!(f, "{len} bytes is not a whole number of {record}-byte records")
            }
        }
    }
}

impl std::error::Error for CastError {}

/// Reinterprets `bytes` as a slice of `T` records without copying.
///
/// Checks alignment and length divisibility; zero-sized `T` is rejected
/// at compile time by the derives (no such type derives `FromBytes`
/// here) and defensively at runtime.
pub fn slice_from_bytes<T: FromBytes + Immutable>(bytes: &[u8]) -> Result<&[T], CastError> {
    let size = core::mem::size_of::<T>();
    let align = core::mem::align_of::<T>();
    assert!(size > 0, "zero-sized records cannot be cast from bytes");
    let offset = (bytes.as_ptr() as usize) % align;
    if offset != 0 {
        return Err(CastError::Misaligned { align, offset });
    }
    if !bytes.len().is_multiple_of(size) {
        return Err(CastError::SizeMismatch { record: size, len: bytes.len() });
    }
    let count = bytes.len() / size;
    // SAFETY: `T: FromBytes` guarantees every bit pattern is a valid `T`
    // (and, per the derive restrictions, `T` is a padding-free repr(C)
    // struct of integer fields); the pointer is checked aligned above and
    // the length is an exact record multiple, so the produced slice covers
    // only the source bytes.
    Ok(unsafe { core::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), count) })
}

/// Views a slice of `T` records as raw bytes without copying.
pub fn slice_as_bytes<T: IntoBytes + Immutable>(records: &[T]) -> &[u8] {
    let len = core::mem::size_of_val(records);
    // SAFETY: `T: IntoBytes` guarantees the representation has no padding
    // (every byte is initialized), and a byte view of initialized memory
    // at the same address/length is always in bounds.
    unsafe { core::slice::from_raw_parts(records.as_ptr().cast::<u8>(), len) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone, Copy)]
    #[repr(C)]
    struct Rec {
        a: u32,
        b: u32,
    }
    impl FromBytes for Rec {}
    impl IntoBytes for Rec {}
    impl Immutable for Rec {}
    impl KnownLayout for Rec {}

    #[test]
    fn round_trips_records() {
        let recs = [Rec { a: 1, b: 2 }, Rec { a: 3, b: 4 }];
        let bytes = slice_as_bytes(&recs);
        assert_eq!(bytes.len(), 16);
        let back: &[Rec] = slice_from_bytes(bytes).expect("aligned");
        assert_eq!(back, &recs);
    }

    #[test]
    fn rejects_misaligned_and_ragged() {
        let buf = [0u8; 32];
        let base = buf.as_ptr() as usize;
        let shift = (4 - base % 4) % 4 + 1; // guaranteed misaligned for u32
        let misaligned = &buf[shift..shift + 8];
        assert!(matches!(
            slice_from_bytes::<Rec>(misaligned),
            Err(CastError::Misaligned { align: 4, .. })
        ));
        let aligned = &buf[(4 - base % 4) % 4..];
        let ragged = &aligned[..7];
        assert_eq!(
            slice_from_bytes::<Rec>(ragged),
            Err(CastError::SizeMismatch { record: 8, len: 7 })
        );
    }
}
