//! A parsed JSON tree and a small recursive-descent parser.

use crate::{write_json_string, DeError};
use std::fmt;

/// A JSON document.
///
/// Numbers keep integer/float distinction so `u64` values round-trip
/// exactly (`f64` would lose precision above 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer literal (no `.`/exponent in the source).
    Int(i128),
    /// A float literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Writes this value as JSON, indenting nested containers when
    /// `indent` is `Some(step)`.
    pub fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.iter(), |v, out, lvl| {
                    v.write(out, indent, lvl)
                });
            }
            Value::Object(pairs) => {
                write_seq(out, indent, level, '{', '}', pairs.iter(), |(k, v), out, lvl| {
                    write_json_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, lvl)
                });
            }
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(T, &mut String, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (level + 1)));
        }
        write_item(item, out, level + 1);
    }
    if n > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * level));
        }
    }
    out.push(close);
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        f.write_str(&s)
    }
}

/// Parses a JSON document. Trailing whitespace is allowed; trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Value, DeError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(DeError(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, kw: &str, v: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(DeError(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        let mut float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError("invalid utf-8 in number".into()))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| DeError(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| DeError(format!("invalid integer `{text}`")))
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(DeError("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| DeError("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| DeError("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| DeError("invalid \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError("invalid \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(DeError(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| DeError("invalid utf-8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(DeError(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(DeError(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        assert_eq!(obj[1].1, Value::Str("x".into()));
    }

    #[test]
    fn big_u64_round_trips_exactly() {
        let n = u64::MAX - 1;
        let v = parse(&n.to_string()).unwrap();
        assert_eq!(v, Value::Int(n as i128));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 x").is_err());
        assert!(parse("[1,").is_err());
    }
}
