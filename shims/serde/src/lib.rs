//! Offline stand-in for `serde`.
//!
//! The build environment has no crates registry, so the workspace vendors
//! the slice of serde it uses: `#[derive(Serialize, Deserialize)]` on
//! plain structs and enums, serialized to/from JSON via the companion
//! `serde_json` shim.
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! [`Serialize`] writes JSON text directly and [`Deserialize`] reads from
//! a parsed [`Value`] tree. The derive macro (see `serde_derive`) targets
//! exactly these traits, using serde's *external tagging* convention for
//! enums so the wire format matches what upstream serde_json would emit:
//!
//! * named struct  → `{"field": ...}`
//! * newtype struct → inner value
//! * tuple struct  → `[...]`
//! * unit variant  → `"Name"`
//! * newtype variant → `{"Name": ...}`
//! * tuple variant → `{"Name": [...]}`
//! * struct variant → `{"Name": {...}}`

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{parse, Value};

/// Serialization to JSON text.
///
/// Implementors append their JSON encoding to `out`.
pub trait Serialize {
    /// Appends `self`'s JSON encoding to `out`.
    fn serialize(&self, out: &mut String);
}

/// Deserialization from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from `v`.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// A deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An "expected X while deserializing Y" error.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Derive-support: deserializes a field with the target type inferred
/// from context.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, DeError> {
    T::deserialize(v)
}

/// Derive-support: looks up `key` in an object's pairs.
pub fn obj_get<'a>(
    pairs: &'a [(String, Value)],
    key: &str,
    ty: &str,
) -> Result<&'a Value, DeError> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}` while deserializing {ty}")))
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
    )*};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn itoa_buf(v: i128) -> String {
    v.to_string()
}

impl Serialize for u128 {
    fn serialize(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut String) {
        write_f64(*self, out);
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut String) {
        write_f64(f64::from(*self), out);
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        // Keep whole floats distinguishable from ints, like serde_json.
        if s.contains(['.', 'e', 'E']) {
            out.push_str(&s);
        } else {
            out.push_str(&s);
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; serde_json emits null.
        out.push_str("null");
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for char {
    fn serialize(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut String) {
        (**self).serialize(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize(out),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        self.0.serialize(out);
        out.push(',');
        self.1.serialize(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        self.0.serialize(out);
        out.push(',');
        self.1.serialize(out);
        out.push(',');
        self.2.serialize(out);
        out.push(']');
    }
}

fn serialize_string_map<'a, V: Serialize + 'a>(
    it: impl Iterator<Item = (&'a String, &'a V)>,
    out: &mut String,
) {
    out.push('{');
    for (i, (k, v)) in it.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(k, out);
        out.push(':');
        v.serialize(out);
    }
    out.push('}');
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self, out: &mut String) {
        serialize_string_map(self.iter(), out);
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self, out: &mut String) {
        // Sort for a deterministic encoding (HashMap order is unstable).
        let mut pairs: Vec<_> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        serialize_string_map(pairs.into_iter(), out);
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) if *i >= 0 && *i <= <$t>::MAX as i128 => Ok(*i as $t),
                    _ => Err(DeError::expected("unsigned integer", stringify!($t))),
                }
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize, u128);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) if *i >= <$t>::MIN as i128 && *i <= <$t>::MAX as i128 => {
                        Ok(*i as $t)
                    }
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", "char")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            _ => Err(DeError::expected("2-element array", "tuple")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            _ => Err(DeError::expected("3-element array", "tuple")),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
            }
            _ => Err(DeError::expected("object", "BTreeMap")),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
            }
            _ => Err(DeError::expected("object", "HashMap")),
        }
    }
}
