//! Hand-rolled derives for the offline `zerocopy` shim.
//!
//! No `syn`/`quote` (nothing can be downloaded in this environment), so
//! each macro walks the `proc_macro::TokenStream` directly. The shim's
//! marker traits are safe traits whose soundness contract is "only
//! derive them", so the derives enforce the restrictions that make the
//! casting helpers in the `zerocopy` shim sound:
//!
//! * non-generic `struct` items only (no enums: their discriminant
//!   encodings have invalid bit patterns);
//! * the struct must carry an explicit `#[repr(C)]` (possibly with other
//!   repr arguments, e.g. `#[repr(C, align(8))]`).
//!
//! Field-level padding/validity analysis is out of reach without type
//! resolution; deriving types back the derive with compile-time
//! size/alignment/offset assertions next to their definitions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the `zerocopy::FromBytes` marker.
#[proc_macro_derive(FromBytes)]
pub fn derive_from_bytes(input: TokenStream) -> TokenStream {
    derive_marker(input, "FromBytes")
}

/// Derives the `zerocopy::IntoBytes` marker.
#[proc_macro_derive(IntoBytes)]
pub fn derive_into_bytes(input: TokenStream) -> TokenStream {
    derive_marker(input, "IntoBytes")
}

/// Derives the `zerocopy::Immutable` marker.
#[proc_macro_derive(Immutable)]
pub fn derive_immutable(input: TokenStream) -> TokenStream {
    derive_marker(input, "Immutable")
}

/// Derives the `zerocopy::KnownLayout` marker.
#[proc_macro_derive(KnownLayout)]
pub fn derive_known_layout(input: TokenStream) -> TokenStream {
    derive_marker(input, "KnownLayout")
}

fn derive_marker(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = parse_repr_c_struct_name(input, trait_name);
    format!("impl ::zerocopy::{trait_name} for {name} {{}}")
        .parse()
        .expect("zerocopy_derive: generated invalid marker impl")
}

/// Walks the item, checking it is a non-generic `#[repr(C)]` struct, and
/// returns its name.
fn parse_repr_c_struct_name(input: TokenStream, trait_name: &str) -> String {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut saw_repr_c = false;
    // Leading attributes (doc comments arrive as `#[doc = ...]`) and
    // visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if attr_is_repr_c(&g.stream()) {
                        saw_repr_c = true;
                    }
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => {
            panic!("zerocopy_derive: {trait_name} can only be derived on structs, found {other:?}")
        }
    }
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("zerocopy_derive: expected struct name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.get(i + 1) {
        if p.as_char() == '<' {
            panic!("zerocopy_derive shim does not support generic types (deriving on {name})");
        }
    }
    if !saw_repr_c {
        panic!("zerocopy_derive: {trait_name} requires an explicit #[repr(C)] on {name}");
    }
    name
}

/// True if the attribute group body is `repr(C)` or `repr(C, ...)`.
fn attr_is_repr_c(body: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "repr" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .next()
                .is_some_and(|t| matches!(t, TokenTree::Ident(ref id) if id.to_string() == "C"))
        }
        _ => false,
    }
}
