//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates registry, so the workspace vendors
//! a minimal wall-clock benchmark harness with criterion's spelling:
//! groups, `bench_function`, `iter`/`iter_batched`, `Throughput`,
//! `criterion_group!`/`criterion_main!`. There is no statistics engine —
//! each benchmark runs a handful of timed iterations and prints
//! mean/min/max, which is enough to eyeball regressions offline.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How batched inputs are sized (accepted for API compatibility; the
/// shim always runs one input per measured call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group `{name}`");
        BenchmarkGroup { _criterion: self, name, sample_size: 10, throughput: None }
    }

    /// Registers a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_bench(&id.into(), sample_size, None, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (marker for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        if b.iters > 0 {
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    if samples.is_empty() {
        eprintln!("  {label}: no samples");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    let mut line = format!(
        "  {label}: mean {} (min {}, max {}) over {} samples",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        samples.len()
    );
    if let Some(Throughput::Elements(n)) = throughput {
        if mean > 0.0 {
            line.push_str(&format!(", {:.0} elem/s", n as f64 / mean));
        }
    }
    if let Some(Throughput::Bytes(n)) = throughput {
        if mean > 0.0 {
            line.push_str(&format!(", {:.0} B/s", n as f64 / mean));
        }
    }
    eprintln!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3}us", secs * 1e6)
    } else {
        format!("{:.1}ns", secs * 1e9)
    }
}

/// Passed to the benchmark closure; times the measured routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` (one call per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine` over an input built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group function, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` passes args; the shim runs
            // everything regardless.
            $($group();)+
        }
    };
}
